package system

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBuildersValidate(t *testing.T) {
	ring7, err := Ring(7)
	if err != nil {
		t.Fatalf("Ring(7): %v", err)
	}
	dp5, err := Dining(5)
	if err != nil {
		t.Fatalf("Dining(5): %v", err)
	}
	dp6, err := DiningFlipped(6)
	if err != nil {
		t.Fatalf("DiningFlipped(6): %v", err)
	}
	star4, err := Star(4)
	if err != nil {
		t.Fatalf("Star(4): %v", err)
	}
	tests := []struct {
		name string
		sys  *System
	}{
		{"fig1", Fig1()},
		{"fig2", Fig2()},
		{"fig3", Fig3()},
		{"ring7", ring7},
		{"dining5", dp5},
		{"diningFlipped6", dp6},
		{"star4", star4},
		{"qOverS", QOverSWitness()},
		{"lOverQ", LOverQWitness()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.sys.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if !tt.sys.Connected() {
				t.Error("builder system should be connected")
			}
		})
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := Ring(0); err == nil {
		t.Error("Ring(0) should fail")
	}
	if _, err := Dining(1); err == nil {
		t.Error("Dining(1) should fail")
	}
	if _, err := DiningFlipped(5); err == nil {
		t.Error("DiningFlipped(5) (odd) should fail")
	}
	if _, err := DiningFlipped(2); err == nil {
		t.Error("DiningFlipped(2) should fail")
	}
	if _, err := Star(0); err == nil {
		t.Error("Star(0) should fail")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*System)
		wantErr error
	}{
		{"no procs", func(s *System) { s.ProcIDs = nil; s.Nbr = nil; s.ProcInit = nil }, ErrNoProcessors},
		{"no names", func(s *System) { s.Names = nil }, ErrNoNames},
		{"dup name", func(s *System) { s.Names = []Name{"left", "left"} }, ErrDupName},
		{"bad neighbor", func(s *System) { s.Nbr[0][0] = 99 }, ErrBadNeighbor},
		{"row too short", func(s *System) { s.Nbr[0] = s.Nbr[0][:1] }, ErrShape},
		{"init mismatch", func(s *System) { s.ProcInit = s.ProcInit[:1] }, ErrShape},
		{"orphan var", func(s *System) {
			// Point every edge that used v0 at v1 instead.
			for p := range s.Nbr {
				for j := range s.Nbr[p] {
					if s.Nbr[p][j] == 0 {
						s.Nbr[p][j] = 1
					}
				}
			}
		}, ErrOrphanVar},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := Ring(4)
			if err != nil {
				t.Fatal(err)
			}
			tt.mutate(s)
			if err := s.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNNbr(t *testing.T) {
	s := Fig2()
	v, err := s.NNbr(2, "n")
	if err != nil {
		t.Fatal(err)
	}
	if s.VarIDs[v] != "v2" {
		t.Errorf("p3's n-neighbor = %s, want v2", s.VarIDs[v])
	}
	if _, err := s.NNbr(0, "zzz"); !errors.Is(err, ErrUnknownName) {
		t.Errorf("unknown name error = %v", err)
	}
	if _, err := s.NNbr(17, "n"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node error = %v", err)
	}
}

func TestVarNeighborsFig2(t *testing.T) {
	s := Fig2()
	vn := s.VarNeighbors()
	if len(vn[0]) != 2 { // v1: p1, p2 under name n
		t.Errorf("v1 neighbors = %v, want 2", vn[0])
	}
	if len(vn[1]) != 1 { // v2: p3
		t.Errorf("v2 neighbors = %v, want 1", vn[1])
	}
	if len(vn[2]) != 3 { // v3: all under m
		t.Errorf("v3 neighbors = %v, want 3", vn[2])
	}
	for _, e := range vn[2] {
		if s.Names[e.NameIdx] != "m" {
			t.Errorf("v3 edge uses name %s, want m", s.Names[e.NameIdx])
		}
	}
}

func TestConnected(t *testing.T) {
	s := Fig1()
	if !s.Connected() {
		t.Error("Fig1 should be connected")
	}
	u, err := Union(s, Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if u.Connected() {
		t.Error("union of two systems should be disconnected")
	}
}

func TestUnionPreservesStructure(t *testing.T) {
	a := Fig2()
	b := Fig2()
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("union invalid: %v", err)
	}
	if u.NumProcs() != 6 || u.NumVars() != 6 {
		t.Errorf("union size = (%d,%d), want (6,6)", u.NumProcs(), u.NumVars())
	}
	// The b-half's edges must point at b-half variables.
	for p := 3; p < 6; p++ {
		for _, v := range u.Nbr[p] {
			if v < 3 {
				t.Errorf("processor %d edge crosses into a-half variable %d", p, v)
			}
		}
	}
}

func TestUnionNameMismatch(t *testing.T) {
	a := Fig1()
	b := Fig2()
	if _, err := Union(a, b); !errors.Is(err, ErrShape) {
		t.Errorf("union with different NAMES = %v, want ErrShape", err)
	}
}

func TestUnionAll(t *testing.T) {
	u, err := UnionAll([]*System{Fig1(), Fig1(), Fig1()})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumProcs() != 6 {
		t.Errorf("NumProcs = %d, want 6", u.NumProcs())
	}
	if _, err := UnionAll(nil); err == nil {
		t.Error("empty UnionAll should fail")
	}
}

func TestInducedFig3(t *testing.T) {
	s := Fig3()
	sub, procMap, err := Induced(s, []int{0, 1}) // {p, q}
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("induced invalid: %v", err)
	}
	if sub.NumProcs() != 2 {
		t.Fatalf("induced |P| = %d, want 2", sub.NumProcs())
	}
	// z dropped: u loses z's b-edge, w loses z's a-edge.
	vn := sub.VarNeighbors()
	for v := range vn {
		if len(vn[v]) == 0 {
			t.Errorf("induced variable %s has no edges", sub.VarIDs[v])
		}
	}
	newP, ok := procMap[0]
	if !ok {
		t.Fatal("procMap missing p")
	}
	if sub.ProcIDs[newP] != "p" {
		t.Errorf("image of p = %s", sub.ProcIDs[newP])
	}
	// In the subsystem, u has exactly one edge (p's a-edge).
	uIdx, err := sub.NNbr(procMap[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(vn[uIdx]); got != 1 {
		t.Errorf("u in subsystem has %d edges, want 1", got)
	}
}

func TestInducedErrors(t *testing.T) {
	s := Fig3()
	if _, _, err := Induced(s, nil); !errors.Is(err, ErrEmptySubsetPs) {
		t.Errorf("empty subset = %v", err)
	}
	if _, _, err := Induced(s, []int{0, 0}); err == nil {
		t.Error("duplicate subset should fail")
	}
	if _, _, err := Induced(s, []int{9}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("out of range subset = %v", err)
	}
}

func TestApplyAndAutomorphism(t *testing.T) {
	s, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	// Rotation by one is an automorphism of the ring.
	rot := Permutation{
		ProcPerm: []int{1, 2, 3, 0},
		VarPerm:  []int{1, 2, 3, 0},
	}
	ok, err := IsAutomorphism(s, rot)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("rotation should be an automorphism of Ring(4)")
	}
	// Swapping two processors without moving variables is not.
	swap := Permutation{
		ProcPerm: []int{1, 0, 2, 3},
		VarPerm:  []int{0, 1, 2, 3},
	}
	ok, err = IsAutomorphism(s, swap)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("processor swap should not be an automorphism")
	}
	// Apply produces a valid isomorphic system.
	img, err := Apply(s, rot)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		t.Errorf("applied system invalid: %v", err)
	}
}

func TestAutomorphismRespectsInitialState(t *testing.T) {
	s, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	s.ProcInit[0] = "marked"
	rot := Permutation{ProcPerm: []int{1, 2, 3, 0}, VarPerm: []int{1, 2, 3, 0}}
	ok, err := IsAutomorphism(s, rot)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("rotation must not be an automorphism once a processor is marked")
	}
}

func TestApplyRejectsBadPermutations(t *testing.T) {
	s := Fig1()
	if _, err := Apply(s, Permutation{ProcPerm: []int{0}, VarPerm: []int{0}}); err == nil {
		t.Error("wrong-size permutation should fail")
	}
	if _, err := Apply(s, Permutation{ProcPerm: []int{0, 0}, VarPerm: []int{0}}); err == nil {
		t.Error("non-bijective permutation should fail")
	}
	if _, err := Apply(s, Permutation{ProcPerm: []int{0, 5}, VarPerm: []int{0}}); err == nil {
		t.Error("out-of-range permutation should fail")
	}
}

func TestRandomSystemAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		opts := RandomOpts{
			Procs:      1 + rng.Intn(6),
			Vars:       1 + rng.Intn(5),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(3),
		}
		s, err := RandomSystem(rng, opts)
		if err != nil {
			// Unattachable variable counts are a legal outcome when
			// edge slots < vars; verify the precondition really failed.
			if opts.Procs*opts.Names >= opts.Vars {
				t.Fatalf("RandomSystem(%+v) failed despite enough slots: %v", opts, err)
			}
			continue
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("random system %d invalid: %v\n%s", i, err, s.Describe())
		}
	}
}

func TestRandomSystemDeterministic(t *testing.T) {
	opts := RandomOpts{Procs: 5, Vars: 4, Names: 2, InitStates: 2}
	a, err := RandomSystem(rand.New(rand.NewSource(7)), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSystem(rand.New(rand.NewSource(7)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Describe() != b.Describe() {
		t.Error("same seed should give identical systems")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := Fig2()
	c := s.Clone()
	c.Nbr[0][0] = 1
	c.ProcInit[0] = "mutated"
	if s.Nbr[0][0] == 1 || s.ProcInit[0] == "mutated" {
		t.Error("Clone shares memory with original")
	}
}

func TestStringers(t *testing.T) {
	for _, i := range []InstrSet{InstrS, InstrL, InstrQ, InstrExtL, InstrSet(99)} {
		if i.String() == "" {
			t.Errorf("empty String for %d", int(i))
		}
	}
	for _, c := range []ScheduleClass{SchedGeneral, SchedFair, SchedBoundedFair, ScheduleClass(99)} {
		if c.String() == "" {
			t.Errorf("empty String for %d", int(c))
		}
	}
	for _, k := range []Kind{KindProcessor, KindVariable, Kind(99)} {
		if k.String() == "" {
			t.Errorf("empty String for %d", int(k))
		}
	}
	if P(3).String() != "p3" || V(2).String() != "v2" {
		t.Error("node stringers wrong")
	}
}

func TestDiningFlippedSharedForks(t *testing.T) {
	s, err := DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	// Claim from the paper: each philosopher's right fork is also one of
	// its neighbors' right fork (forks split into shared-right and
	// shared-left classes).
	vn := s.VarNeighbors()
	for v := range vn {
		if len(vn[v]) != 2 {
			t.Fatalf("fork %d has %d users, want 2", v, len(vn[v]))
		}
		n0 := s.Names[vn[v][0].NameIdx]
		n1 := s.Names[vn[v][1].NameIdx]
		if n0 != n1 {
			t.Errorf("fork %d used under different names %s/%s; flipped table should share names", v, n0, n1)
		}
	}
}

func TestDiningPlainForksUseBothNames(t *testing.T) {
	s, err := Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	vn := s.VarNeighbors()
	for v := range vn {
		if len(vn[v]) != 2 {
			t.Fatalf("fork %d has %d users, want 2", v, len(vn[v]))
		}
		n0 := s.Names[vn[v][0].NameIdx]
		n1 := s.Names[vn[v][1].NameIdx]
		if n0 == n1 {
			t.Errorf("fork %d used twice under name %s; plain table alternates names", v, n0)
		}
	}
}
