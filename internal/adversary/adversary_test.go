package adversary

import (
	"math/rand"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/sched"
	"simsym/internal/system"
)

// loopMachine builds a machine whose processors never halt, for driving
// schedulers that ignore or only lightly inspect the state.
func loopMachine(t *testing.T, n int) *machine.Machine {
	t.Helper()
	sys, err := system.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	b := machine.NewBuilder()
	b.Label("top")
	b.Compute(func(*machine.Regs) {})
	b.Jump("top")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(sys, system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// collect drives s against m for up to max picks, stepping the machine
// so adaptive schedulers see a live run.
func collect(t *testing.T, s machine.Scheduler, m *machine.Machine, max int) []int {
	t.Helper()
	var out []int
	for len(out) < max {
		p, ok := s.Next(m)
		if !ok {
			break
		}
		out = append(out, p)
		if err := m.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestAdaptersMatchSchedGenerators(t *testing.T) {
	const n, rounds = 4, 6
	m := loopMachine(t, n)

	rr, err := sched.RoundRobin(n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, RoundRobin(n), m, n*rounds); !equalInts(got, rr) {
		t.Errorf("RoundRobin adapter %v != sched %v", got, rr)
	}

	want, err := sched.ShuffledRounds(rand.New(rand.NewSource(9)), n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, Shuffled(rand.New(rand.NewSource(9)), n), m, n*rounds)
	if !equalInts(got, want) {
		t.Errorf("Shuffled adapter %v != sched %v", got, want)
	}

	want, err = sched.UniformRandom(rand.New(rand.NewSource(9)), n, 40)
	if err != nil {
		t.Fatal(err)
	}
	got = collect(t, Uniform(rand.New(rand.NewSource(9)), n), m, 40)
	if !equalInts(got, want) {
		t.Errorf("Uniform adapter %v != sched %v", got, want)
	}

	want, err = sched.Starve([]int{1, 3}, rounds)
	if err != nil {
		t.Fatal(err)
	}
	got = collect(t, Starver([]int{1, 3}), m, 2*rounds)
	if !equalInts(got, want) {
		t.Errorf("Starver adapter %v != sched %v", got, want)
	}

	fin := []int{2, 0, 1, 0}
	got = collect(t, FromSlice(fin), m, 100)
	if !equalInts(got, fin) {
		t.Errorf("FromSlice %v != %v (must end when exhausted)", got, fin)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKBoundedRejectsTightWindows(t *testing.T) {
	if _, err := NewKBounded(RoundRobin(3), 3, 2); err == nil {
		t.Error("k < n should be rejected: no k-window can cover n processors")
	}
	if _, err := NewKBounded(RoundRobin(3), 0, 5); err == nil {
		t.Error("n < 1 should be rejected")
	}
}

func TestKBoundedEnforcerEmitsKBoundedStreams(t *testing.T) {
	// Whatever the inner scheduler proposes — uniform random picks are
	// not k-bounded for any k — the enforcer's output must satisfy
	// sched.IsKBounded on every prefix.
	for seed := int64(0); seed < 8; seed++ {
		const n, k, steps = 5, 7, 600
		m := loopMachine(t, n)
		s, err := NewKBounded(Uniform(rand.New(rand.NewSource(seed)), n), n, k)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, s, m, steps)
		if len(got) != steps {
			t.Fatalf("seed %d: enforcer ended early at %d", seed, len(got))
		}
		if !sched.IsKBounded(got, n, k) {
			t.Errorf("seed %d: enforced stream is not %d-bounded", seed, k)
		}
	}
}

func TestKBoundedPassesThroughLegalInner(t *testing.T) {
	// Round-robin is n-bounded, so with k >= 2n-1 the enforcer should
	// never override it.
	const n, k, steps = 4, 7, 80
	m := loopMachine(t, n)
	s, err := NewKBounded(RoundRobin(n), n, k)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, s, m, steps)
	want, err := sched.RoundRobin(n, steps/n)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, want) {
		t.Errorf("enforcer rewrote a legal round-robin: %v", got[:12])
	}
}

// strawmanProgram is the E7 naive selection attempt in S: read the shared
// variable, select if it still holds "0", then mark it. Correct under
// round-robin by luck of interleaving, broken under the FLP adversary.
func strawmanProgram(t *testing.T) *machine.Program {
	t.Helper()
	b := machine.NewBuilder()
	x, selected, mark := b.Sym("x"), b.Sym("selected"), b.Sym("mark")
	b.Read("n", "x")
	b.Compute(func(r *machine.Regs) {
		if r.Get(x) == "0" {
			r.Set(selected, true)
			r.Set(mark, "taken")
		} else {
			r.Set(mark, "seen")
		}
	})
	b.Write("n", "mark")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestFLPForcesDoubleSelectionOnSymmetricSystem(t *testing.T) {
	// Theorem 1 on Figure 1: both processors read "0" and are poised to
	// select; the adversary steps them back-to-back and Uniqueness
	// breaks. No general-schedule algorithm escapes this on a symmetric
	// system.
	h := &Harness{
		Sys:        system.Fig1(),
		Instr:      system.InstrS,
		Prog:       strawmanProgram(t),
		Sched:      NewFLP(),
		StatePreds: []mc.StatePredicate{mc.UniquenessPred},
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("FLP adversary should have forced a double selection")
	}
	if got := res.Final.SelectedProcs(); len(got) < 2 {
		t.Errorf("expected >= 2 selected, got %v", got)
	}
}
