package adversary

import (
	"math/rand"
	"testing"

	"simsym/internal/core"
	"simsym/internal/system"
)

// TestChurnStreamStaysOracleExact runs a seeded stream over a ring and a
// tree and cross-checks the incremental labels against a full recompute
// every few events (every event is pinned already by the core tests and
// fuzzer; here the point is that the stream's own bookkeeping — id
// pools, crash sets — stays consistent with the engine).
func TestChurnStreamStaysOracleExact(t *testing.T) {
	for _, build := range []func() (*system.System, error){
		func() (*system.System, error) { return system.Ring(10) },
		func() (*system.System, error) { return system.Tree(10) },
	} {
		sys, err := build()
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.NewDynSystem(sys, core.RuleQ, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ch := NewChurn(rand.New(rand.NewSource(42)), d, ChurnOpts{})
		kinds := map[string]int{}
		for ev := 0; ev < 200; ev++ {
			kind, _, err := ch.Step()
			if err != nil {
				t.Fatalf("event %d (%s): %v", ev, kind, err)
			}
			kinds[kind]++
			if ev%10 == 0 {
				if err := d.Check(); err != nil {
					t.Fatalf("event %d: %v", ev, err)
				}
				got := d.Labeling()
				want, err := core.Similarity(got.Sys, core.RuleQ)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.ProcLabels {
					if got.ProcLabels[i] != want.ProcLabels[i] {
						t.Fatalf("event %d: divergence at proc %d", ev, i)
					}
				}
			}
			if ch.Procs() != d.NumProcs() {
				t.Fatalf("event %d: stream tracks %d procs, engine has %d", ev, ch.Procs(), d.NumProcs())
			}
		}
		// The default mix must exercise every event kind in 200 events.
		for _, k := range []string{"join", "leave", "crash", "restart", "rewire"} {
			if kinds[k] == 0 {
				t.Fatalf("event kind %q never fired: %v", k, kinds)
			}
		}
	}
}

// TestChurnDeterministic pins replayability: same seed, same stream.
func TestChurnDeterministic(t *testing.T) {
	run := func() []string {
		sys, err := system.Ring(8)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.NewDynSystem(sys, core.RuleQ, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ch := NewChurn(rand.New(rand.NewSource(7)), d, ChurnOpts{MaxProcs: 12})
		var kinds []string
		for ev := 0; ev < 100; ev++ {
			kind, _, err := ch.Step()
			if err != nil {
				t.Fatal(err)
			}
			kinds = append(kinds, kind)
		}
		return kinds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at event %d: %s vs %s", i, a[i], b[i])
		}
	}
}
