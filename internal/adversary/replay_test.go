package adversary

import (
	"math/rand"
	"testing"

	"simsym/internal/system"
)

// TestReplayDeterminism is the seeded-replay sweep: for every shipped
// adversary/fault combination, two fresh runs from the same seeds must
// produce byte-identical schedule prefixes, fault logs, and final
// fingerprints, and replaying the recorded trace must reproduce the run
// exactly. CI runs this under -race -count=2 (go test -run Replay), so
// any hidden nondeterminism — map iteration in a decision path, shared
// RNG state, a data race — shows up as a Diff.
func TestReplayDeterminism(t *testing.T) {
	diningSpec := func(spec Spec) func(t *testing.T) (*Harness, error) {
		return func(t *testing.T) (*Harness, error) {
			sys, err := system.DiningFlipped(4)
			if err != nil {
				return nil, err
			}
			h, err := NewDiningHarness(sys, 2, Shuffled(rand.New(rand.NewSource(13)), sys.NumProcs()))
			if err != nil {
				return nil, err
			}
			if spec.Enabled() {
				h.Faults = NewFaults(spec, sys.NumProcs(), sys.NumVars())
			}
			h.MaxSlots = 4000
			return h, nil
		}
	}
	cases := []struct {
		name  string
		build func(t *testing.T) (*Harness, error)
	}{
		{"dining/shuffled/none", diningSpec(Spec{})},
		{"dining/shuffled/crash", diningSpec(Spec{CrashRate: 0.02, MaxCrashes: 1, CrashSeed: 13})},
		{"dining/shuffled/stall", diningSpec(Spec{StallRate: 0.05, StallLen: 7, StallSeed: 13})},
		{"dining/shuffled/lockdrop", diningSpec(Spec{DropRate: 0.02, DropSeed: 13})},
		{"dining/shuffled/all", diningSpec(Spec{
			CrashRate: 0.01, MaxCrashes: 1, CrashSeed: 13,
			StallRate: 0.03, StallLen: 5, StallSeed: 14,
			DropRate: 0.01, DropSeed: 15,
		})},
		{"select-q/uniform/crash", func(t *testing.T) (*Harness, error) {
			sys := system.Fig2()
			h, err := NewSelectHarness(sys, system.InstrQ, system.SchedFair, Uniform(rand.New(rand.NewSource(7)), sys.NumProcs()))
			if err != nil {
				return nil, err
			}
			h.Faults = NewFaults(Spec{CrashRate: 0.01, MaxCrashes: 1, CrashSeed: 7}, sys.NumProcs(), sys.NumVars())
			h.MaxSlots = 4000
			return h, nil
		}},
		{"select-s/flp/none", func(t *testing.T) (*Harness, error) {
			h, err := NewSelectHarness(markedFig1(), system.InstrS, system.SchedBoundedFair, NewFLP())
			if err != nil {
				return nil, err
			}
			h.MaxSlots = 1000
			return h, nil
		}},
		{"select-s/kbounded-flp/stall", func(t *testing.T) (*Harness, error) {
			sys := markedFig1()
			enf, err := NewKBounded(NewFLP(), sys.NumProcs(), 4)
			if err != nil {
				return nil, err
			}
			h, err := NewSelectHarness(sys, system.InstrS, system.SchedBoundedFair, enf)
			if err != nil {
				return nil, err
			}
			h.Faults = NewFaults(Spec{StallRate: 0.1, StallLen: 3, StallSeed: 2}, sys.NumProcs(), sys.NumVars())
			h.MaxSlots = 2000
			return h, nil
		}},
		{"algorithm3/shuffled/crash", func(t *testing.T) (*Harness, error) {
			fam := markedRingFamily(t)
			h, err := NewAlgorithm3Harness(fam, 1, Shuffled(rand.New(rand.NewSource(19)), fam.Members[1].NumProcs()))
			if err != nil {
				return nil, err
			}
			h.Faults = NewFaults(Spec{CrashRate: 0.02, MaxCrashes: 1, CrashSeed: 19}, fam.Members[1].NumProcs(), fam.Members[1].NumVars())
			h.MaxSlots = 3000
			return h, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() *Result {
				h, err := tc.build(t)
				if err != nil {
					t.Fatal(err)
				}
				res, err := h.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if d := a.Diff(b); d != "" {
				t.Fatalf("two same-seed runs diverged: %s", d)
			}
			h, err := tc.build(t)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := h.Replay(a)
			if err != nil {
				t.Fatal(err)
			}
			if d := a.Diff(rep); d != "" {
				t.Fatalf("trace replay diverged: %s", d)
			}
		})
	}
}
