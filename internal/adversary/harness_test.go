package adversary

import (
	"math/rand"
	"strings"
	"testing"

	"simsym/internal/dining"
	"simsym/internal/family"
	"simsym/internal/sched"
	"simsym/internal/system"
)

// markedFig1 is Figure 1's two-processor shared-variable system with one
// processor marked: graph-symmetric, but the initial states break the
// similarity, so SELECT is solvable in S under bounded-fair schedules.
func markedFig1() *system.System {
	s := system.Fig1().Clone()
	s.ProcInit[1] = "1"
	return s
}

func TestFLPStarvesSelectUnderGeneralSchedules(t *testing.T) {
	// Theorem 1's other half: on a system where SELECT is solvable under
	// bounded-fair schedules, the general-schedule adversary simply
	// starves the would-be leader's selecting step forever. The run
	// never violates anything — selection just never happens.
	h, err := NewSelectHarness(markedFig1(), system.InstrS, system.SchedBoundedFair, NewFLP())
	if err != nil {
		t.Fatal(err)
	}
	h.MaxSlots = 2000
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("starvation run should be violation-free, got %+v", *res.Violation)
	}
	if res.Done {
		t.Fatal("FLP adversary let SELECT settle under a general schedule")
	}
	if got := res.Final.SelectedProcs(); len(got) != 0 {
		t.Fatalf("FLP adversary let processors %v select", got)
	}
}

func TestKBoundedEnforcerDefeatsFLP(t *testing.T) {
	// Wrapping the same adversary in the k-bounded-fair enforcer is the
	// paper's dividing line: the starved processor gets its step within
	// k slots, and SELECT terminates with exactly one selected.
	const k = 4
	sys := markedFig1()
	inner := NewFLP()
	enf, err := NewKBounded(inner, sys.NumProcs(), k)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewSelectHarness(sys, system.InstrS, system.SchedBoundedFair, enf)
	if err != nil {
		t.Fatal(err)
	}
	h.MaxSlots = 2000
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %+v", *res.Violation)
	}
	if !res.Done {
		t.Fatal("k-bounded enforcer failed to defeat the FLP adversary")
	}
	if got := res.Final.SelectedProcs(); len(got) != 1 {
		t.Fatalf("want exactly one selected, got %v", got)
	}
	if !sched.IsKBounded(res.Schedule, sys.NumProcs(), k) {
		t.Fatalf("enforced schedule prefix is not %d-bounded", k)
	}
	// The trace is replayable: same schedule + fault log => same run.
	rep, err := h.Replay(res)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Diff(rep); d != "" {
		t.Fatalf("replay diverged: %s", d)
	}
}

func TestDiningCrashKeepsExclusion(t *testing.T) {
	// Crash-stop faults can starve neighbors (a philosopher dies holding
	// a fork) but must never break mutual exclusion.
	sys, err := system.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		h, err := NewDiningHarness(sys, 2, Shuffled(rand.New(rand.NewSource(seed)), sys.NumProcs()))
		if err != nil {
			t.Fatal(err)
		}
		h.Faults = NewFaults(Spec{CrashRate: 0.01, MaxCrashes: 1, CrashSeed: seed}, sys.NumProcs(), sys.NumVars())
		h.MaxSlots = 20000
		res, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: crash fault broke exclusion: %+v", seed, *res.Violation)
		}
	}
}

func TestDiningStallsOnlyDelay(t *testing.T) {
	// Stalls burn slots but stall no assumption: every philosopher still
	// eats and exclusion holds.
	sys, err := system.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewDiningHarness(sys, 2, Shuffled(rand.New(rand.NewSource(3)), sys.NumProcs()))
	if err != nil {
		t.Fatal(err)
	}
	h.Faults = NewFaults(Spec{StallRate: 0.05, StallLen: 9, StallSeed: 3}, sys.NumProcs(), sys.NumVars())
	h.MaxSlots = 20000
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("stall fault broke exclusion: %+v", *res.Violation)
	}
	if !res.Done {
		t.Fatalf("stalled table failed to converge: meals %v after %d slots", dining.Meals(res.Final), res.Slots)
	}
}

func TestDiningLockDropBreaksExclusion(t *testing.T) {
	// Lock-drop attacks the assumption the locking solution rests on. A
	// hand-crafted trace: philosopher 0 acquires both forks and starts
	// eating; every fork lock is dropped; philosopher 1 then acquires
	// both of its forks (one shared with 0) and eats too — two adjacent
	// philosophers eating, caught by the exclusion predicate. Injecting
	// through the replay layer shows the fault log is a first-class
	// trace format, not just a recording.
	sys, err := system.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	var schedule []int
	for i := 0; i < 7; i++ {
		schedule = append(schedule, 0)
	}
	for i := 0; i < 7; i++ {
		schedule = append(schedule, 1)
	}
	var log []Event
	for v := 0; v < sys.NumVars(); v++ {
		log = append(log, Event{Slot: 7, Kind: KindDrop, Target: v})
	}
	h, err := NewDiningHarness(sys, 1, FromSlice(schedule))
	if err != nil {
		t.Fatal(err)
	}
	h.Faults = NewReplayer(log)
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("lock-drop should have broken exclusion; meals %v", dining.Meals(res.Final))
	}
	if !strings.Contains(res.Violation.Reason, "eating together") {
		t.Fatalf("unexpected violation: %+v", *res.Violation)
	}
	// The emitted trace replays to the identical violation.
	rep, err := h.Replay(res)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Diff(rep); d != "" {
		t.Fatalf("replay diverged: %s", d)
	}
}

func markedRingFamily(t *testing.T) *family.Family {
	t.Helper()
	base, err := system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	memberA := base.Clone()
	memberA.ProcInit[0] = "M"
	memberB := base.Clone()
	memberB.ProcInit[0] = "M"
	memberB.ProcInit[2] = "M"
	fam, err := family.NewHomogeneous([]*system.System{memberA, memberB})
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestAlgorithm3HarnessConverges(t *testing.T) {
	fam := markedRingFamily(t)
	for member := range fam.Members {
		h, err := NewAlgorithm3Harness(fam, member, Shuffled(rand.New(rand.NewSource(11)), fam.Members[member].NumProcs()))
		if err != nil {
			t.Fatal(err)
		}
		h.MaxSlots = 20000
		res, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("member %d: %+v", member, *res.Violation)
		}
		if !res.Done {
			t.Fatalf("member %d: Algorithm 3 failed to converge in %d slots", member, res.Slots)
		}
	}
}

func TestAlgorithm3HarnessToleratesCrashSafely(t *testing.T) {
	// A crashed processor blocks Algorithm 3's convergence (everyone
	// waits to see all posts), but no surviving processor may ever halt
	// with a wrong label: safety degrades gracefully, progress does not.
	fam := markedRingFamily(t)
	h, err := NewAlgorithm3Harness(fam, 0, Shuffled(rand.New(rand.NewSource(5)), fam.Members[0].NumProcs()))
	if err != nil {
		t.Fatal(err)
	}
	h.Faults = NewFaults(Spec{CrashRate: 0.05, MaxCrashes: 1, CrashSeed: 5}, fam.Members[0].NumProcs(), fam.Members[0].NumVars())
	h.MaxSlots = 5000
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("crash fault produced a mislabeling: %+v", *res.Violation)
	}
}
