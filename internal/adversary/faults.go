package adversary

import (
	"fmt"
	"math/rand"
	"strings"

	"simsym/internal/machine"
)

// Kind enumerates the fault classes.
type Kind int

const (
	// KindCrash permanently halts a processor (crash-stop).
	KindCrash Kind = iota + 1
	// KindStall skips a scheduled processor's step for a while (the
	// processor is paused, not failed; its slots are burned).
	KindStall
	// KindDrop forcibly releases a held lock without telling the holder.
	KindDrop
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindStall:
		return "stall"
	case KindDrop:
		return "lock-drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one injected fault, recorded in slot order. The fault log plus
// the schedule prefix is a complete replayable trace: re-applying the
// events at their recorded slots over the recorded schedule reproduces
// the run byte for byte.
type Event struct {
	Slot   int  // schedule slot the fault fired on
	Kind   Kind // what fired
	Target int  // processor (crash, stall) or variable (lock-drop)
}

func (e Event) String() string {
	return fmt.Sprintf("slot %d: %s %d", e.Slot, e.Kind, e.Target)
}

// Layer decides, once per schedule slot, which faults fire.
// Implementations must be deterministic functions of the slot sequence
// and the machine's evolution: the seeded layer derives every decision
// from per-class RNG streams, the replay layer from a recorded log.
type Layer interface {
	// Apply fires this slot's faults on m (crashes, lock drops mutate the
	// machine directly) and reports whether the slot's granted step must
	// be skipped (a stall), along with the events that fired.
	Apply(slot, pick int, m *machine.Machine) (skip bool, events []Event)
}

// Spec configures seeded random fault injection. Rates are per-slot
// probabilities; each fault class draws from its own seeded stream, so
// enabling one class never perturbs another's timeline — the property
// that makes fault sweeps comparable across configurations.
type Spec struct {
	CrashRate  float64 // per-slot probability of crashing a random live processor
	MaxCrashes int     // cap on crashes; 0 means n-1 (always leave one processor alive)
	CrashSeed  int64

	StallRate float64 // per-slot probability of stalling a random processor
	StallLen  int     // slots a stalled processor stays skipped; 0 means 5
	StallSeed int64

	DropRate float64 // per-slot probability of dropping a random held lock
	DropSeed int64
}

// Enabled reports whether any fault class has a non-zero rate.
func (s Spec) Enabled() bool {
	return s.CrashRate > 0 || s.StallRate > 0 || s.DropRate > 0
}

// Faults is the seeded random fault layer.
type Faults struct {
	spec         Spec
	maxCrashes   int
	stallLen     int
	crashRng     *rand.Rand
	stallRng     *rand.Rand
	dropRng      *rand.Rand
	stalledUntil []int // slot before which each processor's steps are skipped
	crashes      int
}

// NewFaults builds a seeded fault layer for a system with nProcs
// processors and nVars variables.
func NewFaults(spec Spec, nProcs, nVars int) *Faults {
	f := &Faults{
		spec:         spec,
		maxCrashes:   spec.MaxCrashes,
		stallLen:     spec.StallLen,
		crashRng:     rand.New(rand.NewSource(spec.CrashSeed)),
		stallRng:     rand.New(rand.NewSource(spec.StallSeed)),
		dropRng:      rand.New(rand.NewSource(spec.DropSeed)),
		stalledUntil: make([]int, nProcs),
	}
	if f.maxCrashes <= 0 {
		f.maxCrashes = nProcs - 1
	}
	if f.stallLen <= 0 {
		f.stallLen = 5
	}
	_ = nVars // victims are drawn from the live machine, which knows its sizes
	return f
}

// Apply implements Layer. Classes draw in a fixed order (crash, stall,
// drop) so the per-class streams stay aligned across runs; only events
// that actually changed something are logged (a crash of an
// already-halted processor or a drop of an unheld lock is not an event),
// which keeps the log sufficient for exact replay.
func (f *Faults) Apply(slot, pick int, m *machine.Machine) (bool, []Event) {
	var evs []Event
	if f.spec.CrashRate > 0 && f.crashRng.Float64() < f.spec.CrashRate {
		victim := f.crashRng.Intn(m.NumProcs())
		if f.crashes < f.maxCrashes && !m.Halted(victim) {
			_ = m.Crash(victim) // victim is in range by construction
			f.crashes++
			evs = append(evs, Event{Slot: slot, Kind: KindCrash, Target: victim})
		}
	}
	if f.spec.StallRate > 0 && f.stallRng.Float64() < f.spec.StallRate {
		victim := f.stallRng.Intn(len(f.stalledUntil))
		f.stalledUntil[victim] = slot + f.stallLen
	}
	if f.spec.DropRate > 0 && f.dropRng.Float64() < f.spec.DropRate {
		v := f.dropRng.Intn(m.NumVars())
		if m.Locked(v) {
			_ = m.DropLock(v)
			evs = append(evs, Event{Slot: slot, Kind: KindDrop, Target: v})
		}
	}
	if pick >= 0 && pick < len(f.stalledUntil) && slot < f.stalledUntil[pick] {
		// Only the skip itself is logged, not the stall window: replay
		// needs to know which slots were burned, nothing more.
		evs = append(evs, Event{Slot: slot, Kind: KindStall, Target: pick})
		return true, evs
	}
	return false, evs
}

// Replayer is the replay fault layer: it re-fires a recorded fault log at
// the recorded slots and injects nothing else.
type Replayer struct {
	log []Event
	i   int
}

// NewReplayer builds a replay layer from a fault log recorded by a prior
// run (Result.FaultLog). Events must be in nondecreasing slot order,
// which is how Harness.Run records them.
func NewReplayer(log []Event) *Replayer {
	return &Replayer{log: log}
}

// Apply implements Layer.
func (r *Replayer) Apply(slot, pick int, m *machine.Machine) (bool, []Event) {
	skip := false
	var evs []Event
	for r.i < len(r.log) && r.log[r.i].Slot == slot {
		e := r.log[r.i]
		r.i++
		switch e.Kind {
		case KindCrash:
			_ = m.Crash(e.Target)
		case KindDrop:
			_ = m.DropLock(e.Target)
		case KindStall:
			skip = true
		}
		evs = append(evs, e)
	}
	return skip, evs
}

// ParseSpec builds a fault Spec from a comma-separated list of class
// names ("crash", "stall", "lockdrop") with default rates, deriving each
// class's stream seed from the given base seed. It is the shared parser
// behind the -faults CLI flags.
func ParseSpec(classes string, seed int64) (Spec, error) {
	var spec Spec
	for _, c := range strings.Split(classes, ",") {
		switch strings.TrimSpace(c) {
		case "":
		case "crash":
			spec.CrashRate = 0.02
			spec.MaxCrashes = 1
			spec.CrashSeed = seed
		case "stall":
			spec.StallRate = 0.05
			spec.StallLen = 7
			spec.StallSeed = seed + 1
		case "lockdrop":
			spec.DropRate = 0.02
			spec.DropSeed = seed + 2
		default:
			return Spec{}, fmt.Errorf("adversary: unknown fault class %q (want crash, stall, lockdrop)", c)
		}
	}
	return spec, nil
}
