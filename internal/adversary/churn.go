package adversary

import (
	"fmt"
	"math/rand"

	"simsym/internal/core"
	"simsym/internal/partition"
)

// ChurnOpts weights the event mix of a churn stream. Zero weights drop
// the event kind; an all-zero struct gets the defaults (join 3, leave 3,
// crash 1, restart 1, rewire 2).
type ChurnOpts struct {
	JoinWeight    int
	LeaveWeight   int
	CrashWeight   int
	RestartWeight int
	RewireWeight  int
	// MinProcs suppresses leaves that would shrink the population below
	// this floor (default 2; the engine itself refuses to drop the last
	// processor).
	MinProcs int
	// MaxProcs suppresses joins above this ceiling (0 = unbounded).
	MaxProcs int
	// Join, when set, builds the mutation batch for a join event given a
	// uniformly chosen template processor; it returns the new
	// processor's id as well. The default clone-join gives the new
	// processor the template's exact bindings. Topology-aware callers
	// (the ring-splice benchmark) substitute a locality-preserving
	// splice here.
	Join func(rng *rand.Rand, d *core.DynSystem, template string, seq int) (id string, muts []core.Mutation)
}

func (o ChurnOpts) withDefaults() ChurnOpts {
	if o.JoinWeight == 0 && o.LeaveWeight == 0 && o.CrashWeight == 0 && o.RestartWeight == 0 && o.RewireWeight == 0 {
		o.JoinWeight, o.LeaveWeight, o.CrashWeight, o.RestartWeight, o.RewireWeight = 3, 3, 1, 1, 2
	}
	if o.MinProcs < 2 {
		o.MinProcs = 2
	}
	return o
}

// Churn is a seeded stream of topology mutation events over a dynamic
// similarity engine: processors join, leave, crash, restart, and rewire,
// extending the fault vocabulary of the scheduler layer to the topology
// itself. Every stream is a deterministic function of (seed, options,
// initial population), so churn runs replay exactly. Event generation
// is O(1) (amortized) regardless of population size: the stream keeps
// its own id pools instead of asking the engine for full listings.
type Churn struct {
	rng     *rand.Rand
	d       *core.DynSystem
	opts    ChurnOpts
	procs   []string
	procAt  map[string]int
	crashed []string
	crashAt map[string]int
	seq     int
	total   int
}

// NewChurn builds a churn stream over d seeded from rng. The engine's
// current processors form the initial population.
func NewChurn(rng *rand.Rand, d *core.DynSystem, opts ChurnOpts) *Churn {
	c := &Churn{
		rng:     rng,
		d:       d,
		opts:    opts.withDefaults(),
		procs:   d.ProcIDs(),
		procAt:  make(map[string]int),
		crashAt: make(map[string]int),
	}
	for i, id := range c.procs {
		c.procAt[id] = i
	}
	return c
}

func (c *Churn) dropProc(id string) {
	i := c.procAt[id]
	last := len(c.procs) - 1
	c.procs[i] = c.procs[last]
	c.procAt[c.procs[i]] = i
	c.procs = c.procs[:last]
	delete(c.procAt, id)
	if j, ok := c.crashAt[id]; ok {
		lastC := len(c.crashed) - 1
		c.crashed[j] = c.crashed[lastC]
		c.crashAt[c.crashed[j]] = j
		c.crashed = c.crashed[:lastC]
		delete(c.crashAt, id)
	}
}

func (c *Churn) cloneJoin(template string) (string, []core.Mutation) {
	bind, err := c.d.Bindings(template)
	if err != nil {
		return "", nil
	}
	id := fmt.Sprintf("c%d", c.seq)
	return id, []core.Mutation{{Op: core.OpAddProc, Proc: id, Init: "0", Bind: bind}}
}

// Step generates and applies one churn event, returning its kind and
// the relabel stats. Suppressed events (leave at the population floor,
// join at the ceiling, crash with everyone crashed, ...) degrade to the
// next viable kind; Step only errors if the engine rejects a mutation,
// which indicates a bug in the stream.
func (c *Churn) Step() (kind string, st partition.UpdateStats, err error) {
	o := c.opts
	weights := [5]int{o.JoinWeight, o.LeaveWeight, o.CrashWeight, o.RestartWeight, o.RewireWeight}
	if len(c.procs) <= o.MinProcs {
		weights[1] = 0
	}
	if o.MaxProcs > 0 && len(c.procs) >= o.MaxProcs {
		weights[0] = 0
	}
	if len(c.crashed) == len(c.procs) {
		weights[2] = 0
	}
	if len(c.crashed) == 0 {
		weights[3] = 0
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return "", st, fmt.Errorf("adversary: churn stream has no viable events")
	}
	pick := c.rng.Intn(total)
	ev := 0
	for ; ev < len(weights); ev++ {
		if pick < weights[ev] {
			break
		}
		pick -= weights[ev]
	}
	c.total++
	switch ev {
	case 0: // join
		template := c.procs[c.rng.Intn(len(c.procs))]
		join := c.opts.Join
		var id string
		var muts []core.Mutation
		if join != nil {
			id, muts = join(c.rng, c.d, template, c.seq)
		} else {
			id, muts = c.cloneJoin(template)
		}
		c.seq++
		if len(muts) == 0 {
			return "", st, fmt.Errorf("adversary: join produced no mutations")
		}
		st, err = c.d.Apply(muts...)
		if err == nil {
			c.procAt[id] = len(c.procs)
			c.procs = append(c.procs, id)
		}
		return "join", st, err
	case 1: // leave
		id := c.procs[c.rng.Intn(len(c.procs))]
		st, err = c.d.RemoveProc(id)
		if err == nil {
			c.dropProc(id)
		}
		return "leave", st, err
	case 2: // crash: resample until a non-crashed processor comes up
		// (terminates: weights[2] is zeroed when everyone is down)
		var id string
		for {
			id = c.procs[c.rng.Intn(len(c.procs))]
			if _, down := c.crashAt[id]; !down {
				break
			}
		}
		st, err = c.d.Crash(id)
		if err == nil {
			c.crashAt[id] = len(c.crashed)
			c.crashed = append(c.crashed, id)
		}
		return "crash", st, err
	case 3: // restart
		id := c.crashed[c.rng.Intn(len(c.crashed))]
		st, err = c.d.Restart(id)
		if err == nil {
			j := c.crashAt[id]
			last := len(c.crashed) - 1
			c.crashed[j] = c.crashed[last]
			c.crashAt[c.crashed[j]] = j
			c.crashed = c.crashed[:last]
			delete(c.crashAt, id)
		}
		return "restart", st, err
	default: // rewire: adopt another processor's binding for one name
		p := c.procs[c.rng.Intn(len(c.procs))]
		q := c.procs[c.rng.Intn(len(c.procs))]
		names := c.d.Names()
		k := c.rng.Intn(len(names))
		bind, berr := c.d.Bindings(q)
		if berr != nil {
			return "", st, berr
		}
		st, err = c.d.Rewire(p, names[k], bind[k])
		return "rewire", st, err
	}
}

// Events returns how many events the stream has generated.
func (c *Churn) Events() int { return c.total }

// Procs returns the current population size the stream tracks.
func (c *Churn) Procs() int { return len(c.procs) }
