// Package adversary implements the paper's schedule classes as streaming,
// adaptive schedulers (machine.Scheduler), plus a fault-injection harness
// with deterministic replay.
//
// The paper's impossibility proofs are adversary arguments: Theorem 1's
// general-schedule adversary watches the run and withholds steps, and the
// k-bounded-fair class is exactly the restriction that defeats it. The
// finite []int schedules produced by package sched are prefixes of the
// oblivious members of these classes; this package adds the adaptive
// members — schedulers that pick each step after observing the previous
// one land — and a Jepsen-style fault layer (crash, stall, lock-drop)
// whose every run is replayable from (seed, schedule prefix, fault log).
package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"simsym/internal/machine"
	"simsym/internal/sched"
)

// FromSlice streams a precomputed finite schedule, ending when exhausted.
func FromSlice(schedule []int) machine.Scheduler {
	return &generator{buf: schedule, done: true}
}

// generator adapts a finite-schedule generator into a stream by
// regenerating one round-sized chunk at a time. The adapters below stay
// step-for-step identical to their sched counterparts (the equivalence
// tests pin this), so every oblivious schedule class has one streaming
// and one finite spelling.
type generator struct {
	gen  func() ([]int, error)
	buf  []int
	i    int
	done bool
}

func (g *generator) Next(*machine.Machine) (int, bool) {
	if g.i >= len(g.buf) {
		if g.done {
			return 0, false
		}
		buf, err := g.gen()
		if err != nil || len(buf) == 0 {
			g.done = true
			return 0, false
		}
		g.buf, g.i = buf, 0
	}
	p := g.buf[g.i]
	g.i++
	return p, true
}

// RoundRobin streams 0..n-1 forever (sched.RoundRobin as a stream).
func RoundRobin(n int) machine.Scheduler {
	return &generator{gen: func() ([]int, error) { return sched.RoundRobin(n, 1) }}
}

// Shuffled streams one random permutation of 0..n-1 per round
// (sched.ShuffledRounds as a stream; (2n-1)-bounded fair).
func Shuffled(rng *rand.Rand, n int) machine.Scheduler {
	return &generator{gen: func() ([]int, error) { return sched.ShuffledRounds(rng, n, 1) }}
}

// Uniform streams uniform random picks (sched.UniformRandom as a stream;
// fair with probability 1 but not k-bounded for any k).
func Uniform(rng *rand.Rand, n int) machine.Scheduler {
	return &generator{gen: func() ([]int, error) { return sched.UniformRandom(rng, n, 1) }}
}

// Starver streams only the given processors, round-robin, forever —
// Theorem 1's static starving adversary (sched.Starve as a stream).
func Starver(active []int) machine.Scheduler {
	return &generator{gen: func() ([]int, error) { return sched.Starve(active, 1) }}
}

// FLP is the Theorem 1 adversary: an adaptive general-schedule scheduler
// that tries to prevent any run from ever settling with exactly one
// processor selected. Before granting a step it probes it on a clone of
// the machine; a processor whose next step would newly set its selected
// flag is starved while anyone else still has safe steps to take. Two
// escapes close the trap:
//
//   - When every live processor is poised to select, they are stepped
//     back-to-back, so at least two select together and Uniqueness fails.
//     On a symmetric system driven in lockstep the poised set always has
//     this shape: similar processors reach the selection point together
//     (Theorem 2's lock-step argument).
//   - When exactly one processor is poised and nobody else can move, the
//     adversary stops scheduling — a legal general schedule in which
//     selection simply never happens.
//
// Either way no FLP-driven run ends with exactly one selected processor,
// which is Theorem 1's conclusion. The k-bounded-fair enforcer (KBounded)
// is the antidote: it forces the starved processor's step within k slots,
// which is precisely why SELECT is solvable under bounded-fair schedules
// and not under general ones.
type FLP struct {
	next   int   // rotation cursor, so starvation is not also unfairness to low indices
	forced []int // poised processors queued for back-to-back selection
}

// NewFLP returns the Theorem 1 adaptive adversary.
func NewFLP() *FLP { return &FLP{} }

// Next implements machine.Scheduler.
func (a *FLP) Next(m *machine.Machine) (int, bool) {
	if len(a.forced) > 0 {
		p := a.forced[0]
		a.forced = a.forced[1:]
		return p, true
	}
	n := m.NumProcs()
	var poised []int
	for t := 0; t < n; t++ {
		p := (a.next + t) % n
		if m.Halted(p) {
			continue
		}
		if stepSelects(m, p) {
			poised = append(poised, p)
			continue
		}
		a.next = (p + 1) % n
		return p, true
	}
	if len(poised) >= 2 {
		// Everyone still moving is poised: force them all, selection
		// doubles before anyone can retreat.
		sort.Ints(poised)
		a.forced = append(a.forced, poised[1:]...)
		a.next = (poised[0] + 1) % n
		return poised[0], true
	}
	// Everyone halted, or a lone poised processor: starve it forever.
	return 0, false
}

// stepSelects probes, on a clone, whether stepping p would newly set p's
// selected flag. Probe errors count as not poised (the real Step will
// surface the error to the driver).
func stepSelects(m *machine.Machine, p int) bool {
	if sel, ok := m.Local(p, "selected"); ok && sel == true {
		return false // already selected; this step cannot newly select
	}
	c := m.Clone()
	if err := c.Step(p); err != nil {
		return false
	}
	sel, ok := c.Local(p, "selected")
	return ok && sel == true
}

// KBounded clamps an inner scheduler to k-bounded-fair legality: every
// processor appears in every window of k consecutive emitted steps, so
// sched.IsKBounded holds on every finite prefix. It is the paper's
// bounded-fair schedule class as an *enforcer*: the inner scheduler
// proposes, and the proposal is granted only while granting it keeps every
// other processor's deadline feasible; otherwise the most urgent processor
// is emitted instead (earliest deadline first). Wrapping the FLP adversary
// in KBounded is exactly the paper's dividing line — the starved
// processor gets its step within k slots and SELECT terminates.
//
// Halted processors are still emitted (stepping a halted processor is a
// legal stutter), keeping the emitted stream k-bounded in the schedule
// sense even when parts of the system have finished or crashed.
type KBounded struct {
	inner machine.Scheduler
	k     int
	last  []int // emission step each processor was last named; -1 = never
	t     int   // next emission step index
	ds    []int // scratch: deadlines of the non-picked processors
}

// NewKBounded wraps inner so the emitted stream is k-bounded fair for n
// processors. Requires k >= n (no schedule with fewer slots than
// processors per window can cover them all).
func NewKBounded(inner machine.Scheduler, n, k int) (*KBounded, error) {
	if n < 1 || k < n {
		return nil, fmt.Errorf("%w: n=%d k=%d (need k >= n >= 1)", sched.ErrBadArgs, n, k)
	}
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	return &KBounded{inner: inner, k: k, last: last, ds: make([]int, 0, n-1)}, nil
}

// Next implements machine.Scheduler. It ends the schedule when the inner
// scheduler does.
func (s *KBounded) Next(m *machine.Machine) (int, bool) {
	pick, ok := s.inner.Next(m)
	if !ok {
		return 0, false
	}
	if pick < 0 || pick >= len(s.last) {
		pick = 0 // out-of-range proposals clamp to a legal processor
	}
	p := s.clamp(pick)
	s.last[p] = s.t
	s.t++
	return p, true
}

// deadline is the last emission step at which processor q may next appear
// without opening a k-window that misses it.
func (s *KBounded) deadline(q int) int {
	if s.last[q] < 0 {
		return s.k - 1
	}
	return s.last[q] + s.k
}

// clamp returns pick when emitting it now keeps every other processor
// schedulable by its deadline, and the earliest-deadline processor
// otherwise. Feasibility after emitting pick at step t: the remaining
// processors, served in earliest-deadline order from t+1, must each meet
// their deadline. The enforcer starts feasible (all deadlines k-1, k >= n)
// and both branches preserve feasibility, so by induction every processor
// is always emitted by its deadline and the stream is k-bounded.
func (s *KBounded) clamp(pick int) int {
	s.ds = s.ds[:0]
	for q := range s.last {
		if q != pick {
			s.ds = append(s.ds, s.deadline(q))
		}
	}
	sort.Ints(s.ds)
	feasible := true
	for i, d := range s.ds {
		if d < s.t+1+i {
			feasible = false
			break
		}
	}
	if feasible {
		return pick
	}
	best, bd := 0, s.deadline(0)
	for q := 1; q < len(s.last); q++ {
		if d := s.deadline(q); d < bd {
			best, bd = q, d
		}
	}
	return best
}
