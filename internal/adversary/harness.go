package adversary

import (
	"fmt"

	"simsym/internal/dining"
	"simsym/internal/distlabel"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/obs"
	"simsym/internal/selection"
	"simsym/internal/system"
)

// Violation records the first invariant breach of a harness run.
type Violation struct {
	Slot   int    // schedule slot during which the breach appeared
	Step   int    // executed steps at that point
	Reason string // the predicate's message (mc predicate conventions)
}

// Result is the complete, replayable record of one harness run: the
// schedule prefix actually consumed, the fault log, and enough outcome
// state to compare runs byte for byte. Replaying (Schedule, FaultLog)
// over the same program must reproduce an Equal Result — the determinism
// tests and the -replay CLI flags enforce exactly that.
type Result struct {
	Schedule    []int   // every slot's scheduled processor, in order
	FaultLog    []Event // every fault that fired, in slot order
	Steps       int     // steps actually executed (slots minus skips/stutters)
	Slots       int     // schedule slots consumed
	Done        bool    // the harness's convergence predicate held
	Halted      bool    // every processor halted (voluntarily or crashed)
	Violation   *Violation
	Fingerprint string // final machine.Fingerprint()

	// Final is the machine in its final state, for callers that want to
	// inspect beyond the fingerprint (meal counts, selected set). Not
	// part of run identity: Diff/Equal ignore it, Fingerprint covers it.
	Final *machine.Machine
}

// Diff returns "" when the two results describe the identical run, and a
// description of the first divergence otherwise.
func (r *Result) Diff(o *Result) string {
	if len(r.Schedule) != len(o.Schedule) {
		return fmt.Sprintf("schedule length %d vs %d", len(r.Schedule), len(o.Schedule))
	}
	for i := range r.Schedule {
		if r.Schedule[i] != o.Schedule[i] {
			return fmt.Sprintf("schedule slot %d: %d vs %d", i, r.Schedule[i], o.Schedule[i])
		}
	}
	if len(r.FaultLog) != len(o.FaultLog) {
		return fmt.Sprintf("fault log length %d vs %d", len(r.FaultLog), len(o.FaultLog))
	}
	for i := range r.FaultLog {
		if r.FaultLog[i] != o.FaultLog[i] {
			return fmt.Sprintf("fault log entry %d: %v vs %v", i, r.FaultLog[i], o.FaultLog[i])
		}
	}
	switch {
	case r.Steps != o.Steps:
		return fmt.Sprintf("steps %d vs %d", r.Steps, o.Steps)
	case r.Slots != o.Slots:
		return fmt.Sprintf("slots %d vs %d", r.Slots, o.Slots)
	case r.Done != o.Done:
		return fmt.Sprintf("done %v vs %v", r.Done, o.Done)
	case r.Halted != o.Halted:
		return fmt.Sprintf("halted %v vs %v", r.Halted, o.Halted)
	case (r.Violation == nil) != (o.Violation == nil):
		return fmt.Sprintf("violation %v vs %v", r.Violation, o.Violation)
	case r.Violation != nil && *r.Violation != *o.Violation:
		return fmt.Sprintf("violation %+v vs %+v", *r.Violation, *o.Violation)
	case r.Fingerprint != o.Fingerprint:
		return "final fingerprints differ"
	}
	return ""
}

// Equal reports whether two results describe the identical run.
func (r *Result) Equal(o *Result) bool { return r.Diff(o) == "" }

// Harness drives one algorithm run under a streaming scheduler with
// optional fault injection, checking invariants after every executed
// step and recording a replayable trace. Zero values: MaxSlots defaults
// to 10000; nil Faults injects nothing; nil Done never converges early;
// empty predicate slices check nothing.
type Harness struct {
	Sys   *system.System
	Instr system.InstrSet
	Prog  *machine.Program

	Sched  machine.Scheduler
	Faults Layer

	// MaxSlots bounds schedule slots (including skipped ones), so
	// stall-heavy or stuttering runs terminate too.
	MaxSlots int

	// StatePreds are checked after every executed step (and after any
	// slot whose faults fired); TransPreds see (before, after, proc) for
	// every executed step. Both follow package mc's conventions: a
	// non-empty string is a violation message.
	StatePreds []mc.StatePredicate
	TransPreds []mc.TransitionPredicate

	// ProcPreds see (machine, stepping processor) after every executed
	// step — the localized complement of StatePreds for sampled runs at
	// large n, where an O(n) scan per step would dominate the run.
	ProcPreds []mc.ProcPredicate

	// Done is the convergence predicate, checked before every slot and
	// once more at the end.
	Done func(m *machine.Machine) bool

	// Obs, when non-nil, receives structured events: a harness.run phase,
	// one KindSchedStep event per schedule slot (stepped=false for stalls
	// and burned slots), one KindFault event per fault-log entry, and the
	// final verdict. The stream is a deterministic function of the run, so
	// replayed runs produce identical event streams.
	Obs *obs.Recorder
}

const defaultMaxSlots = 10000

// Run executes the harness from a fresh machine to convergence, budget
// exhaustion, scheduler end, or first violation, and returns the
// replayable record. Violations end the run but are not errors; err is
// reserved for broken configurations (bad system, illegal instruction).
func (h *Harness) Run() (*Result, error) {
	e, err := h.Start()
	if err != nil {
		return nil, err
	}
	if _, err := e.Advance(e.budget); err != nil {
		return nil, err
	}
	return e.Finalize(), nil
}

// Exec is an in-flight harness run that can be advanced a bounded number
// of slots at a time — the incremental form of Run that simsymd sessions
// step on demand. The sequence Start → Advance(budget) → Finalize is
// exactly Run: the schedule trace, fault log, predicate checks, and obs
// event stream are identical however the slots are portioned out.
// An Exec is not safe for concurrent use.
type Exec struct {
	h        *Harness
	m        *machine.Machine
	res      *Result
	budget   int // overall MaxSlots budget, fixed at Start
	finished bool
	final    bool // Finalize ran
}

// Start builds the machine and begins a run without advancing it.
func (h *Harness) Start() (*Exec, error) {
	m, err := machine.New(h.Sys, h.Instr, h.Prog)
	if err != nil {
		return nil, err
	}
	budget := h.MaxSlots
	if budget <= 0 {
		budget = defaultMaxSlots
	}
	h.Obs.PhaseStart("harness.run")
	return &Exec{h: h, m: m, res: &Result{}, budget: budget}, nil
}

// Finished reports whether the run has ended (convergence, budget
// exhaustion, scheduler end, or violation) and further Advance calls
// will consume no slots.
func (e *Exec) Finished() bool { return e.finished }

// Slots returns the schedule slots consumed so far.
func (e *Exec) Slots() int { return e.res.Slots }

// Steps returns the steps actually executed so far.
func (e *Exec) Steps() int { return e.res.Steps }

// Violation returns the first invariant breach, or nil.
func (e *Exec) Violation() *Violation { return e.res.Violation }

// Machine exposes the live machine for read-only inspection between
// Advance calls (selected set, meal counts, halt flags).
func (e *Exec) Machine() *machine.Machine { return e.m }

// Trace exposes the schedule prefix consumed so far. The slice is the
// live record — callers must copy before mutating.
func (e *Exec) Trace() []int { return e.res.Schedule }

// FaultLog exposes the fault events fired so far. The slice is the live
// record — callers must copy before mutating.
func (e *Exec) FaultLog() []Event { return e.res.FaultLog }

// Advance consumes up to maxSlots further schedule slots, stopping early
// at convergence, overall budget exhaustion, scheduler end, or first
// violation. It reports whether the run has ended; err is reserved for
// broken configurations, which also end the run.
func (e *Exec) Advance(maxSlots int) (finished bool, err error) {
	h, m, res := e.h, e.m, e.res
	consumed := 0
	for !e.finished && consumed < maxSlots {
		if res.Slots >= e.budget {
			e.finished = true
			break
		}
		if h.Done != nil && h.Done(m) {
			res.Done = true
			e.finished = true
			break
		}
		if m.AllHalted() {
			e.finished = true
			break
		}
		pick, ok := h.Sched.Next(m)
		if !ok {
			e.finished = true
			break
		}
		slot := res.Slots
		res.Schedule = append(res.Schedule, pick)
		res.Slots++
		consumed++
		skip := false
		if h.Faults != nil {
			var evs []Event
			skip, evs = h.Faults.Apply(slot, pick, m)
			if len(evs) > 0 {
				res.FaultLog = append(res.FaultLog, evs...)
				if h.Obs.Enabled() {
					for _, ev := range evs {
						h.Obs.Fault(ev.Kind.String(), ev.Slot, ev.Target)
					}
				}
				if v := h.checkState(m, slot, res.Steps); v != nil {
					res.Violation = v
					e.finished = true
					return true, nil
				}
			}
		}
		if skip {
			h.Obs.SchedStep(slot, pick, false)
			continue
		}
		var before *machine.Machine
		if len(h.TransPreds) > 0 {
			before = m.Clone()
		}
		stepped, err := m.StepOrSkip(pick)
		if err != nil {
			e.finished = true
			return true, err
		}
		h.Obs.SchedStep(slot, pick, stepped)
		if !stepped {
			continue // halted/crashed pick: the slot is burned, nothing moved
		}
		res.Steps++
		if v := h.checkState(m, slot, res.Steps); v != nil {
			res.Violation = v
			e.finished = true
			return true, nil
		}
		for _, pred := range h.ProcPreds {
			if msg := pred(m, pick); msg != "" {
				res.Violation = &Violation{Slot: slot, Step: res.Steps, Reason: msg}
				e.finished = true
				return true, nil
			}
		}
		for _, pred := range h.TransPreds {
			if msg := pred(before, m, pick); msg != "" {
				res.Violation = &Violation{Slot: slot, Step: res.Steps, Reason: msg}
				e.finished = true
				return true, nil
			}
		}
	}
	if !e.finished && res.Slots >= e.budget {
		e.finished = true
	}
	return e.finished, nil
}

// Finalize ends the run, fills the outcome fields (Done, Halted,
// Fingerprint, Final), emits the closing obs events, and returns the
// replayable record. Idempotent; Advance after Finalize is a no-op.
func (e *Exec) Finalize() *Result {
	h, m, res := e.h, e.m, e.res
	e.finished = true
	if e.final {
		return res
	}
	e.final = true
	res.Halted = m.AllHalted()
	if !res.Done && res.Violation == nil && h.Done != nil {
		res.Done = h.Done(m)
	}
	res.Fingerprint = m.Fingerprint()
	res.Final = m
	if h.Obs.Enabled() {
		h.Obs.Count("harness.runs", 1)
		h.Obs.Count("harness.slots", int64(res.Slots))
		h.Obs.Count("harness.steps", int64(res.Steps))
		h.Obs.Count("harness.faults", int64(len(res.FaultLog)))
		detail := "converged"
		switch {
		case res.Violation != nil:
			detail = res.Violation.Reason
		case !res.Done:
			detail = "run ended without convergence"
		}
		h.Obs.Verdict("harness.run", res.Violation == nil, detail)
		h.Obs.PhaseEnd("harness.run", int64(res.Slots))
	}
	return res
}

func (h *Harness) checkState(m *machine.Machine, slot, step int) *Violation {
	for _, pred := range h.StatePreds {
		if msg := pred(m); msg != "" {
			return &Violation{Slot: slot, Step: step, Reason: msg}
		}
	}
	return nil
}

// Replay re-executes a recorded run: the schedule prefix is replayed
// slot for slot and the fault log re-fired at its recorded slots. The
// returned Result must be Equal to the record; callers treat any Diff as
// a determinism bug.
func (h *Harness) Replay(rec *Result) (*Result, error) {
	h2 := *h
	h2.Sched = FromSlice(rec.Schedule)
	h2.Faults = NewReplayer(rec.FaultLog)
	if rec.Slots > 0 {
		h2.MaxSlots = rec.Slots
	}
	return h2.Run()
}

// NewSelectHarness builds a harness running the paper's SELECT program
// for sys under the given model, with the Uniqueness and Stability
// invariants installed and convergence = selection.Settled. The caller
// supplies the scheduler (and optionally Faults / MaxSlots afterwards).
func NewSelectHarness(sys *system.System, instr system.InstrSet, sch system.ScheduleClass, s machine.Scheduler) (*Harness, error) {
	prog, _, err := selection.Select(sys, instr, sch)
	if err != nil {
		return nil, err
	}
	return &Harness{
		Sys:        sys,
		Instr:      instr,
		Prog:       prog,
		Sched:      s,
		StatePreds: []mc.StatePredicate{mc.UniquenessPred},
		TransPreds: []mc.TransitionPredicate{mc.StabilityPred},
		Done:       selection.Settled,
	}, nil
}

// NewAlgorithm3Harness builds a harness running distlabel Algorithm 3's
// uniform program on member of fam (instruction set Q), with an invariant
// that any processor halting on its own has learned its correct family
// label, and convergence when all of them have.
func NewAlgorithm3Harness(fam *family.Family, member int, s machine.Scheduler) (*Harness, error) {
	if member < 0 || member >= len(fam.Members) {
		return nil, fmt.Errorf("adversary: member %d out of range (%d members)", member, len(fam.Members))
	}
	plan, err := distlabel.PlanAlgorithm3(fam)
	if err != nil {
		return nil, err
	}
	prog, err := plan.Program(distlabel.Options{})
	if err != nil {
		return nil, err
	}
	want := plan.MemberLabels[member]
	labelCheck := func(m *machine.Machine) string {
		for p := 0; p < m.NumProcs(); p++ {
			if !m.Halted(p) || m.Crashed(p) {
				continue // crashed processors owe nothing
			}
			v, ok := m.Local(p, "label2")
			if !ok {
				return fmt.Sprintf("algorithm 3: processor %d halted without a family label", p)
			}
			if v != want[p] {
				return fmt.Sprintf("algorithm 3: processor %d halted with label %v, want %d", p, v, want[p])
			}
		}
		return ""
	}
	return &Harness{
		Sys:        fam.Members[member],
		Instr:      system.InstrQ,
		Prog:       prog,
		Sched:      s,
		StatePreds: []mc.StatePredicate{labelCheck},
		Done:       func(m *machine.Machine) bool { return distlabel.AllResolved(m, "label2") },
	}, nil
}

// NewDiningHarness builds a harness running the fork-locking philosopher
// program (instruction set L) on a dining table, with the exclusion
// invariant installed and convergence when every philosopher that has
// not crashed has eaten its meals.
func NewDiningHarness(sys *system.System, meals int, s machine.Scheduler) (*Harness, error) {
	prog, err := dining.Program("left", "right", meals)
	if err != nil {
		return nil, err
	}
	excl, err := dining.ExclusionPred(sys)
	if err != nil {
		return nil, err
	}
	done := func(m *machine.Machine) bool {
		for p, got := range dining.Meals(m) {
			if !m.Crashed(p) && got < meals {
				return false
			}
		}
		return true
	}
	return &Harness{
		Sys:        sys,
		Instr:      system.InstrL,
		Prog:       prog,
		Sched:      s,
		StatePreds: []mc.StatePredicate{excl},
		Done:       done,
	}, nil
}
