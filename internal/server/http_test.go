package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doJSON(t *testing.T, client *http.Client, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %s)", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
}

func TestHTTPSessionAPI(t *testing.T) {
	s := New(Config{Shards: 2})
	drained := false
	ts := httptest.NewServer(Handler(s, func() { drained = true }))
	defer ts.Close()
	c := ts.Client()

	// Create.
	cfg := selectConfig(9)
	cfg.Config.SchedKind = "shuffled"
	var snap Snapshot
	doJSON(t, c, "POST", ts.URL+"/v1/sessions", cfg, http.StatusCreated, &snap)
	if snap.ID == "" || snap.Kind != "select" {
		t.Fatalf("bad create snapshot: %+v", snap)
	}

	// Step with an explicit slot count.
	doJSON(t, c, "POST", ts.URL+"/v1/sessions/"+snap.ID+"/step",
		map[string]int{"slots": 5}, http.StatusOK, &snap)
	if snap.Slots != 5 {
		t.Fatalf("slots = %d, want 5", snap.Slots)
	}
	// Step with an empty body defaults to one slot.
	doJSON(t, c, "POST", ts.URL+"/v1/sessions/"+snap.ID+"/step", nil, http.StatusOK, &snap)
	if snap.Slots != 6 {
		t.Fatalf("slots = %d, want 6", snap.Slots)
	}

	// Run to completion, inspect the trace.
	doJSON(t, c, "POST", ts.URL+"/v1/sessions/"+snap.ID+"/run", nil, http.StatusOK, &snap)
	if !snap.Finished || !snap.Done {
		t.Fatalf("run did not finish/converge: %+v", snap)
	}
	var insp Snapshot
	doJSON(t, c, "GET", ts.URL+"/v1/sessions/"+snap.ID+"?trace=1", nil, http.StatusOK, &insp)
	if len(insp.Schedule) != snap.Slots {
		t.Fatalf("trace has %d slots, want %d", len(insp.Schedule), snap.Slots)
	}

	// List, health, metrics.
	var list struct {
		Sessions []Snapshot `json:"sessions"`
	}
	doJSON(t, c, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 1 {
		t.Fatalf("list has %d sessions, want 1", len(list.Sessions))
	}
	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
		Draining bool   `json:"draining"`
	}
	doJSON(t, c, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" || health.Sessions != 1 || health.Draining {
		t.Fatalf("bad health: %+v", health)
	}
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"simsym_server_sessions_created_total 1",
		"simsym_server_step_latency_seconds_count",
		"simsym_server_slots_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Error statuses.
	doJSON(t, c, "GET", ts.URL+"/v1/sessions/nope", nil, http.StatusNotFound, nil)
	doJSON(t, c, "POST", ts.URL+"/v1/sessions",
		SessionConfig{Topology: "gen fig2", Kind: "mystery"}, http.StatusBadRequest, nil)

	// Delete.
	doJSON(t, c, "DELETE", ts.URL+"/v1/sessions/"+snap.ID, nil, http.StatusOK, nil)
	doJSON(t, c, "GET", ts.URL+"/v1/sessions/"+snap.ID, nil, http.StatusNotFound, nil)

	// Drain: completes, flips health, and refuses new sessions with 503.
	doJSON(t, c, "POST", ts.URL+"/admin/drain", nil, http.StatusOK, nil)
	if !drained {
		t.Fatal("onDrained hook did not fire")
	}
	doJSON(t, c, "POST", ts.URL+"/v1/sessions", cfg, http.StatusServiceUnavailable, nil)
}

func TestHTTPRateLimit429(t *testing.T) {
	s := New(Config{Shards: 1, RatePerSec: 0.000001, Burst: 1})
	ts := httptest.NewServer(Handler(s, nil))
	defer ts.Close()
	defer drainOrFail(t, s)
	c := ts.Client()

	var snap Snapshot
	doJSON(t, c, "POST", ts.URL+"/v1/sessions", selectConfig(0), http.StatusCreated, &snap)
	// The bucket (burst 1) is dry: the next mutating request bounces.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+snap.ID+"/step", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

func TestHTTPConfigVocabularyMatchesFacade(t *testing.T) {
	// The JSON a session-create request carries is the facade's
	// RunConfig: the same field names unmarshal into runcfg.Common.
	raw := `{
		"topology": "gen dining 4",
		"kind": "dining",
		"meals": 1,
		"config": {
			"seed": 11,
			"sched": "shuffled",
			"faults": "lockdrop",
			"max_slots": 500,
			"max_duration": "2s",
			"workers": 4
		}
	}`
	var cfg SessionConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Config.Seed != 11 || cfg.Config.SchedKind != "shuffled" ||
		cfg.Config.FaultClasses != "lockdrop" || cfg.Config.MaxSlots != 500 ||
		cfg.Config.MaxDuration.Std().Seconds() != 2 || cfg.Config.Workers != 4 {
		t.Fatalf("config did not round-trip: %+v", cfg.Config)
	}
	// And it round-trips back out with the duration in string form.
	out, err := json.Marshal(cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"max_duration":"2s"`) {
		t.Fatalf("marshal lost the duration string form: %s", out)
	}

	s := New(Config{Shards: 1})
	defer drainOrFail(t, s)
	snap, err := s.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Run(snap.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !final.Finished {
		t.Fatalf("session did not finish: %+v", final)
	}
	if final.Slots > 500 {
		t.Fatalf("max_slots not honored: %d slots", final.Slots)
	}
}

func TestHTTPBusyMapsTo429(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 1})
	ts := httptest.NewServer(Handler(s, nil))
	defer ts.Close()
	c := ts.Client()

	var snap Snapshot
	doJSON(t, c, "POST", ts.URL+"/v1/sessions", diningConfig(0), http.StatusCreated, &snap)

	release := parkShard(t, s, 0)
	// One step fits in the queue; fire it asynchronously.
	errc := make(chan error, 1)
	go func() {
		_, err := s.Step(snap.ID, 1, "")
		errc <- err
	}()
	waitFor(t, func() bool { return len(s.shards[0].reqs) == 1 })

	// The next one must bounce over HTTP with 429.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+snap.ID+"/step", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	release()
	if err := <-errc; err != nil {
		t.Fatalf("queued step: %v", err)
	}
	drainOrFail(t, s)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

func TestHTTPTopologyReload(t *testing.T) {
	s := New(Config{Shards: 2})
	ts := httptest.NewServer(Handler(s, nil))
	defer ts.Close()
	defer drainOrFail(t, s)
	c := ts.Client()

	cfg := SessionConfig{Topology: "gen dining 5", Kind: "dining", Meals: 1}
	cfg.Config.MaxSlots = 1 << 20
	var snap Snapshot
	doJSON(t, c, "POST", ts.URL+"/v1/sessions", cfg, http.StatusCreated, &snap)

	var reloaded Snapshot
	doJSON(t, c, "POST", ts.URL+"/v1/sessions/"+snap.ID+"/topology",
		map[string]string{"topology": "gen dining 8"}, http.StatusOK, &reloaded)
	if reloaded.Procs != 8 || reloaded.Reloads != 1 || reloaded.Relabel == nil {
		t.Fatalf("bad reload snapshot: %+v", reloaded)
	}
	if reloaded.Relabel.Splits != 0 || reloaded.Relabel.Classes != 2 {
		t.Fatalf("symmetric growth relabel = %+v, want 0 splits, 2 classes", reloaded.Relabel)
	}

	// Bad target topology → 400; unknown session → 404.
	doJSON(t, c, "POST", ts.URL+"/v1/sessions/"+snap.ID+"/topology",
		map[string]string{"topology": "gen star 4"}, http.StatusBadRequest, nil)
	doJSON(t, c, "POST", ts.URL+"/v1/sessions/nope/topology",
		map[string]string{"topology": "gen dining 5"}, http.StatusNotFound, nil)

	// The relabel work profile shows up on /metrics.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"simsym_server_sessions_reloaded_total 1", "simsym_dyn_touched_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
