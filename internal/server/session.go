package server

import (
	"fmt"
	"math/rand"
	"strings"

	"simsym/internal/adversary"
	"simsym/internal/core"
	"simsym/internal/partition"
	"simsym/internal/runcfg"
	"simsym/internal/sysdsl"
	"simsym/internal/system"
)

// SessionConfig is the JSON body of a session-create request. Its Config
// field is the same runcfg.Common vocabulary the facade's functional
// options build (simsym.RunConfig), so a daemon request and a Go option
// list spell the shared knobs identically; the fields around it name
// what the facade takes as positional arguments: the topology and the
// hosted algorithm.
type SessionConfig struct {
	// Topology is a sysdsl description or generator directive
	// ("gen dining 5", "gen fig2", or a full names/var/proc listing).
	Topology string `json:"topology"`
	// Kind selects the hosted algorithm: "select" runs the paper's
	// SELECT program under Uniqueness+Stability invariants, "dining"
	// the fork-grabbing philosopher program under exclusion.
	Kind string `json:"kind"`
	// Instr picks the instruction set for "select" sessions: "s", "l",
	// or "q" (default "q").
	Instr string `json:"instr,omitempty"`
	// SchedClass picks the schedule class for "select" sessions:
	// "general", "fair" (default), or "bounded".
	SchedClass string `json:"sched_class,omitempty"`
	// Meals is the per-philosopher meal target for "dining" sessions
	// (default 2).
	Meals int `json:"meals,omitempty"`
	// Tenant attributes the session to a rate-limit bucket; empty is the
	// anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// Config carries the shared run options; the session consumes Seed
	// (schedule and fault streams), SchedKind ("uniform" default,
	// "shuffled"), FaultClasses, and MaxSlots (overall slot budget).
	Config runcfg.Common `json:"config"`
}

// session is one hosted VM run. All fields are owned by the shard
// goroutine the session hashes to; nothing here is locked.
type session struct {
	id     string
	tenant string
	cfg    SessionConfig
	sys    *system.System
	h      *adversary.Harness
	exec   *adversary.Exec
	res    *adversary.Result // set once finalized

	// dyn mirrors the session topology once the first hot-reload arrives;
	// subsequent reloads diff against it incrementally instead of
	// relabeling from scratch. Nil until then — steady-state sessions pay
	// nothing for the feature.
	dyn     *core.DynSystem
	reloads int
	relabel *RelabelStats // last reload's incremental work

	// Per-session SLO counters, reported by inspect and folded into the
	// registry-wide histograms as the shard applies batches.
	slots   int
	steps   int
	batches int
	counted bool // finish counters recorded in the registry
}

// newSession validates cfg, builds the topology and harness through the
// same constructors the facade and CLIs use, and starts the run.
func newSession(id string, cfg SessionConfig) (*session, error) {
	if strings.TrimSpace(cfg.Topology) == "" {
		return nil, fmt.Errorf("%w: empty topology", ErrBadSession)
	}
	sys, err := sysdsl.Parse(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("%w: topology: %v", ErrBadSession, err)
	}
	h, err := buildHarness(cfg, sys)
	if err != nil {
		return nil, err
	}
	exec, err := h.Start()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSession, err)
	}
	return &session{id: id, tenant: cfg.Tenant, cfg: cfg, sys: sys, h: h, exec: exec}, nil
}

// buildHarness constructs the hosted VM harness for cfg over sys: the
// algorithm, the seeded schedule, and the fault streams. Shared by
// session creation and topology reload, so a reloaded session runs
// under exactly the knobs it was created with.
func buildHarness(cfg SessionConfig, sys *system.System) (*adversary.Harness, error) {
	var h *adversary.Harness
	var err error
	switch cfg.Kind {
	case "select":
		instr, err := parseInstr(cfg.Instr)
		if err != nil {
			return nil, err
		}
		sc, err := parseSchedClass(cfg.SchedClass)
		if err != nil {
			return nil, err
		}
		h, err = adversary.NewSelectHarness(sys, instr, sc, nil)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSession, err)
		}
	case "dining":
		meals := cfg.Meals
		if meals <= 0 {
			meals = 2
		}
		h, err = adversary.NewDiningHarness(sys, meals, nil)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSession, err)
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %q (want select or dining)", ErrBadSession, cfg.Kind)
	}

	rng := rand.New(rand.NewSource(cfg.Config.Seed))
	switch cfg.Config.SchedKind {
	case "", "uniform":
		h.Sched = adversary.Uniform(rng, sys.NumProcs())
	case "shuffled":
		h.Sched = adversary.Shuffled(rng, sys.NumProcs())
	default:
		return nil, fmt.Errorf("%w: unknown sched kind %q (want uniform or shuffled)", ErrBadSession, cfg.Config.SchedKind)
	}
	if cfg.Config.FaultClasses != "" {
		spec, err := adversary.ParseSpec(cfg.Config.FaultClasses, cfg.Config.Seed)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSession, err)
		}
		// Offset the per-class streams from the schedule stream exactly
		// like the statistical checkers, so a session trace and a
		// same-seed statistical trial draw identical fault sequences.
		spec.CrashSeed, spec.StallSeed, spec.DropSeed = cfg.Config.Seed+1, cfg.Config.Seed+2, cfg.Config.Seed+3
		h.Faults = adversary.NewFaults(spec, sys.NumProcs(), sys.NumVars())
	}
	if cfg.Config.MaxSlots > 0 {
		h.MaxSlots = cfg.Config.MaxSlots
	}
	return h, nil
}

// reload swaps the session onto a new topology. The incremental engine
// diffs the parsed target against the previous topology (splitting and
// merging only the similarity classes the delta invalidates) and the
// hosted run restarts on the new system under the session's original
// knobs; cumulative batch counters survive. The engine is created
// lazily from the session's current system on the first reload.
func (s *session) reload(topology string) (partition.UpdateStats, error) {
	var zero partition.UpdateStats
	if strings.TrimSpace(topology) == "" {
		return zero, fmt.Errorf("%w: empty topology", ErrBadSession)
	}
	target, err := sysdsl.Parse(topology)
	if err != nil {
		return zero, fmt.Errorf("%w: topology: %v", ErrBadSession, err)
	}
	// Build the replacement harness before touching the engine: a target
	// the hosted algorithm rejects (e.g. dining needs every fork shared)
	// must not leave the engine diffed ahead of the session.
	h, err := buildHarness(s.cfg, target)
	if err != nil {
		return zero, err
	}
	exec, err := h.Start()
	if err != nil {
		return zero, fmt.Errorf("%w: %v", ErrBadSession, err)
	}
	if s.dyn == nil {
		d, err := core.NewDynSystem(s.sys, core.RuleQ, core.Config{})
		if err != nil {
			return zero, fmt.Errorf("%w: %v", ErrBadSession, err)
		}
		s.dyn = d
	}
	st, err := s.dyn.ApplyDiff(target)
	if err != nil {
		return zero, fmt.Errorf("%w: reload: %v", ErrBadSession, err)
	}
	s.sys, s.h, s.exec, s.res = target, h, exec, nil
	s.cfg.Topology = topology
	s.counted = false
	s.slots, s.steps = 0, 0
	s.reloads++
	s.relabel = &RelabelStats{
		Touched: st.Touched,
		Splits:  st.Splits,
		Merges:  st.Merges,
		Rebuild: st.Rebuild,
		Classes: st.Classes,
	}
	return st, nil
}

// advance consumes up to maxSlots further slots and finalizes the run
// when it ends. It returns the slots actually consumed.
func (s *session) advance(maxSlots int) (consumed int, err error) {
	if s.res != nil {
		return 0, nil
	}
	before := s.exec.Slots()
	finished, err := s.exec.Advance(maxSlots)
	consumed = s.exec.Slots() - before
	s.slots = s.exec.Slots()
	s.steps = s.exec.Steps()
	s.batches++
	if err != nil {
		s.res = s.exec.Finalize()
		return consumed, err
	}
	if finished {
		s.res = s.exec.Finalize()
	}
	return consumed, nil
}

// runToEnd drives the session to its overall budget.
func (s *session) runToEnd() error {
	for s.res == nil {
		if _, err := s.advance(1 << 14); err != nil {
			return err
		}
	}
	return nil
}

// RelabelStats is the JSON view of one topology reload's incremental
// relabeling work, surfaced on the session snapshot after a reload.
type RelabelStats struct {
	// Touched is the number of slots the diff reported changed.
	Touched int `json:"touched"`
	// Splits and Merges count the class repairs the delta forced.
	Splits int `json:"splits"`
	Merges int `json:"merges"`
	// Rebuild reports a fall-back to full recomputation (the delta
	// destroyed too much symmetry for incremental repair to win).
	Rebuild bool `json:"rebuild,omitempty"`
	// Classes is the similarity class count after the reload.
	Classes int `json:"classes"`
}

// Snapshot is the JSON view of a session's state, returned by every
// step/run/inspect/delete reply.
type Snapshot struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant,omitempty"`
	Kind    string `json:"kind"`
	Procs   int    `json:"procs"`
	Slots   int    `json:"slots"`
	Steps   int    `json:"steps"`
	Batches int    `json:"batches"`
	// Reloads counts topology hot-reloads; Relabel is the last one's
	// incremental relabeling work (absent before the first reload).
	Reloads  int           `json:"reloads,omitempty"`
	Relabel  *RelabelStats `json:"relabel,omitempty"`
	Finished bool          `json:"finished"`
	Done     bool          `json:"done"`
	Halted   bool          `json:"halted"`
	// Violation is the first invariant breach's message ("" while clean).
	Violation string `json:"violation,omitempty"`
	// Fingerprint identifies the final machine state (set once finished).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Schedule and Faults are the replayable trace, included only when
	// the caller asked for it (inspect ?trace=1).
	Schedule []int    `json:"schedule,omitempty"`
	Faults   []string `json:"faults,omitempty"`
}

func (s *session) snapshot(withTrace bool) Snapshot {
	snap := Snapshot{
		ID:      s.id,
		Tenant:  s.tenant,
		Kind:    s.cfg.Kind,
		Procs:   s.sys.NumProcs(),
		Slots:   s.exec.Slots(),
		Steps:   s.exec.Steps(),
		Batches: s.batches,
		Reloads: s.reloads,
		Relabel: s.relabel,
	}
	if v := s.exec.Violation(); v != nil {
		snap.Violation = v.Reason
	}
	if s.res != nil {
		snap.Finished = true
		snap.Done = s.res.Done
		snap.Halted = s.res.Halted
		snap.Fingerprint = s.res.Fingerprint
	}
	if withTrace {
		res := s.res
		if res == nil {
			// Mid-run inspect: the exec's live record has the prefix.
			snap.Schedule = append([]int(nil), s.exec.Trace()...)
			for _, ev := range s.exec.FaultLog() {
				snap.Faults = append(snap.Faults, ev.String())
			}
		} else {
			snap.Schedule = append([]int(nil), res.Schedule...)
			for _, ev := range res.FaultLog {
				snap.Faults = append(snap.Faults, ev.String())
			}
		}
	}
	return snap
}

func parseInstr(s string) (system.InstrSet, error) {
	switch s {
	case "", "q":
		return system.InstrQ, nil
	case "s":
		return system.InstrS, nil
	case "l":
		return system.InstrL, nil
	default:
		return 0, fmt.Errorf("%w: unknown instruction set %q (want s, l, or q)", ErrBadSession, s)
	}
}

func parseSchedClass(s string) (system.ScheduleClass, error) {
	switch s {
	case "", "fair":
		return system.SchedFair, nil
	case "general":
		return system.SchedGeneral, nil
	case "bounded":
		return system.SchedBoundedFair, nil
	default:
		return 0, fmt.Errorf("%w: unknown schedule class %q (want general, fair, or bounded)", ErrBadSession, s)
	}
}
