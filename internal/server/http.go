package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// TenantHeader names the HTTP header attributing step/run requests to a
// rate-limit tenant (session creates carry the tenant in their body).
const TenantHeader = "X-Simsym-Tenant"

// Handler serves the session API over HTTP/JSON:
//
//	POST   /v1/sessions           create (body: SessionConfig) → Snapshot
//	GET    /v1/sessions           list → {"sessions": [Snapshot...]}
//	GET    /v1/sessions/{id}      inspect (?trace=1 adds the replayable trace)
//	POST   /v1/sessions/{id}/step advance (body: {"slots": n}, default 1)
//	POST   /v1/sessions/{id}/run  run to the session's slot budget
//	POST   /v1/sessions/{id}/topology
//	                              hot-reload (body: {"topology": ...});
//	                              incremental relabel + run restart
//	DELETE /v1/sessions/{id}      delete → last Snapshot
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness + session count
//	POST   /admin/drain           graceful drain; responds when complete
//
// Backpressure and rate limiting surface as 429 (full shard queue,
// exhausted tenant bucket), draining and the session cap as 503.
func Handler(s *Server, onDrained func()) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var cfg SessionConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		snap, err := s.Create(cfg)
		if err != nil {
			writeSrvErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, snap)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		snaps, err := s.List()
		if err != nil {
			writeSrvErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"sessions": snaps})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.Inspect(r.PathValue("id"), r.URL.Query().Get("trace") != "")
		if err != nil {
			writeSrvErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/step", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Slots int `json:"slots"`
		}
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
		snap, err := s.Step(r.PathValue("id"), body.Slots, r.Header.Get(TenantHeader))
		if err != nil {
			writeSrvErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/run", func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.Run(r.PathValue("id"), r.Header.Get(TenantHeader))
		if err != nil {
			writeSrvErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/topology", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Topology string `json:"topology"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		snap, err := s.Reload(r.PathValue("id"), body.Topology, r.Header.Get(TenantHeader))
		if err != nil {
			writeSrvErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.Delete(r.PathValue("id"))
		if err != nil {
			writeSrvErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.Registry().WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.gate.mu.RLock()
		draining := s.gate.closed
		s.gate.mu.RUnlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"sessions": s.Sessions(),
			"draining": draining,
		})
	})
	mux.HandleFunc("POST /admin/drain", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"drained": true, "sessions": s.Sessions()})
		if onDrained != nil {
			onDrained()
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeSrvErr maps the server's sentinel errors onto HTTP statuses.
func writeSrvErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy), errors.Is(err, ErrRateLimited):
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrFull):
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrBadSession):
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}
