// Package server hosts many concurrent election/exclusion sessions —
// one VM instance each, built from the same constructors the facade and
// CLIs use — behind a sharded goroutine pool. It is the engine of the
// simsymd daemon (ROADMAP: "simsym-as-a-service").
//
// Architecture: sessions hash by id onto a fixed set of shards; each
// shard is one goroutine that owns its sessions outright, so session
// state is never locked. Requests travel through bounded per-shard
// queues — a full queue rejects immediately (ErrBusy → HTTP 429), which
// is the backpressure signal — and the shard drains its queue in
// batches, coalescing adjacent step requests for the same session into
// one advance. Tenants are rate-limited by token buckets before a
// request may enqueue. Draining closes an admission gate (new requests
// get ErrDraining → 503), then closes every queue; shards finish every
// request already admitted before exiting, so no in-flight step is ever
// dropped.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"simsym/internal/obs"
)

// Request rejection sentinels; the HTTP layer maps them onto statuses
// (ErrBusy, ErrRateLimited → 429; ErrDraining, ErrFull → 503;
// ErrNotFound → 404; ErrBadSession → 400).
var (
	ErrBadSession  = errors.New("server: bad session config")
	ErrNotFound    = errors.New("server: session not found")
	ErrBusy        = errors.New("server: shard queue full")
	ErrRateLimited = errors.New("server: tenant rate limit exceeded")
	ErrDraining    = errors.New("server: draining, not accepting requests")
	ErrFull        = errors.New("server: session limit reached")
)

// Config sizes the server. The zero value selects the documented
// defaults.
type Config struct {
	// Shards is the goroutine-pool size sessions hash onto (default 8).
	Shards int
	// QueueDepth bounds each shard's pending-request queue; a full queue
	// rejects with ErrBusy (default 1024).
	QueueDepth int
	// BatchSize caps how many queued requests one shard wakeup drains
	// and processes as a batch (default 256).
	BatchSize int
	// MaxSessions caps live sessions across all shards (default 1<<20).
	MaxSessions int
	// RatePerSec > 0 enables per-tenant token buckets refilling at this
	// rate; Burst is the bucket capacity (default 2×RatePerSec).
	RatePerSec float64
	Burst      float64
	// Obs supplies the metrics registry the server records into (and the
	// /metrics endpoint serves). Nil creates a private registry.
	Obs *obs.Recorder
	// Now is the clock the rate limiter reads (tests inject a fake;
	// default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1 << 20
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerSec
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

type opKind int

const (
	opCreate opKind = iota
	opStep
	opRun
	opInspect
	opDelete
	opList
	opReload
	// opBarrier parks the shard goroutine until its block channel is
	// closed — a deterministic seam for the backpressure tests. No
	// production path enqueues it.
	opBarrier
)

type request struct {
	op    opKind
	id    string
	slots int           // opStep
	trace bool          // opInspect
	cfg   SessionConfig // opCreate
	topo  string        // opReload: new sysdsl topology
	block chan struct{} // opBarrier: parks the shard until closed
	ack   chan struct{} // opBarrier: closed once the shard is parked
	reply chan reply
}

type reply struct {
	snap  Snapshot
	snaps []Snapshot // opList
	err   error
}

type shard struct {
	reqs     chan request
	sessions map[string]*session
}

// Server hosts sessions across a fixed shard pool. Construct with New;
// a Server must be Drained before discarding or its shard goroutines
// leak.
type Server struct {
	cfg    Config
	shards []*shard
	reg    *obs.Registry
	lim    *limiter

	gate struct {
		mu     sync.RWMutex
		closed bool
	}
	wg sync.WaitGroup

	nextID   atomic.Uint64
	live     atomic.Int64 // live sessions, bounded by MaxSessions
	inflight atomic.Int64 // admitted, unanswered requests (drain telemetry)
}

// New starts the shard pool and returns the server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	if cfg.Obs != nil {
		s.reg = cfg.Obs.Metrics()
	} else {
		s.reg = obs.NewRegistry()
	}
	if cfg.RatePerSec > 0 {
		s.lim = newLimiter(cfg.RatePerSec, cfg.Burst, cfg.Now)
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			reqs:     make(chan request, cfg.QueueDepth),
			sessions: make(map[string]*session),
		}
		s.shards[i] = sh
		s.wg.Add(1)
		go s.run(sh)
	}
	return s
}

// Registry exposes the metrics registry (the /metrics endpoint).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Sessions returns the live session count.
func (s *Server) Sessions() int { return int(s.live.Load()) }

// shardFor hashes a session id onto its owning shard.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// submit admits one request through the drain gate and the target
// shard's bounded queue, then waits for the shard's answer.
func (s *Server) submit(sh *shard, req request) (reply, error) {
	req.reply = make(chan reply, 1)
	s.gate.mu.RLock()
	if s.gate.closed {
		s.gate.mu.RUnlock()
		s.reg.Counter("server.reject.draining").Inc()
		return reply{}, ErrDraining
	}
	select {
	case sh.reqs <- req:
		s.inflight.Add(1)
		s.gate.mu.RUnlock()
	default:
		s.gate.mu.RUnlock()
		s.reg.Counter("server.reject.busy").Inc()
		return reply{}, ErrBusy
	}
	r := <-req.reply
	s.inflight.Add(-1)
	return r, r.err
}

// admitTenant charges one token from the tenant's bucket.
func (s *Server) admitTenant(tenant string) error {
	if s.lim == nil || s.lim.allow(tenant) {
		return nil
	}
	s.reg.Counter("server.reject.ratelimit").Inc()
	return ErrRateLimited
}

// Create validates cfg, builds the session, and registers it on its
// shard. The returned snapshot carries the assigned session id.
func (s *Server) Create(cfg SessionConfig) (Snapshot, error) {
	start := s.cfg.Now()
	if err := s.admitTenant(cfg.Tenant); err != nil {
		return Snapshot{}, err
	}
	if s.live.Load() >= int64(s.cfg.MaxSessions) {
		s.reg.Counter("server.reject.full").Inc()
		return Snapshot{}, ErrFull
	}
	id := "s-" + strconv.FormatUint(s.nextID.Add(1), 36)
	r, err := s.submit(s.shardFor(id), request{op: opCreate, id: id, cfg: cfg})
	if err != nil {
		return Snapshot{}, err
	}
	s.reg.Histogram("server.create.latency").Observe(s.cfg.Now().Sub(start))
	return r.snap, nil
}

// Step advances a session by up to slots schedule slots (default 1) and
// returns its post-advance snapshot.
func (s *Server) Step(id string, slots int, tenant string) (Snapshot, error) {
	start := s.cfg.Now()
	if err := s.admitTenant(tenant); err != nil {
		return Snapshot{}, err
	}
	if slots <= 0 {
		slots = 1
	}
	r, err := s.submit(s.shardFor(id), request{op: opStep, id: id, slots: slots})
	if err != nil {
		return Snapshot{}, err
	}
	s.reg.Histogram("server.step.latency").Observe(s.cfg.Now().Sub(start))
	return r.snap, nil
}

// Run drives a session to its overall slot budget and returns the final
// snapshot.
func (s *Server) Run(id string, tenant string) (Snapshot, error) {
	if err := s.admitTenant(tenant); err != nil {
		return Snapshot{}, err
	}
	r, err := s.submit(s.shardFor(id), request{op: opRun, id: id})
	if err != nil {
		return Snapshot{}, err
	}
	return r.snap, nil
}

// Reload hot-swaps a session's topology to the given sysdsl
// description. The session's incremental similarity engine diffs the
// target against the current topology (split/merge partition repair
// instead of relabeling from scratch) and the hosted run restarts on
// the new system; the returned snapshot carries the relabel stats.
func (s *Server) Reload(id, topology, tenant string) (Snapshot, error) {
	start := s.cfg.Now()
	if err := s.admitTenant(tenant); err != nil {
		return Snapshot{}, err
	}
	r, err := s.submit(s.shardFor(id), request{op: opReload, id: id, topo: topology})
	if err != nil {
		return Snapshot{}, err
	}
	s.reg.Histogram("server.reload.latency").Observe(s.cfg.Now().Sub(start))
	return r.snap, nil
}

// Inspect returns a session's snapshot, with its replayable trace when
// trace is set.
func (s *Server) Inspect(id string, trace bool) (Snapshot, error) {
	r, err := s.submit(s.shardFor(id), request{op: opInspect, id: id, trace: trace})
	if err != nil {
		return Snapshot{}, err
	}
	return r.snap, nil
}

// Delete removes a session and returns its last snapshot.
func (s *Server) Delete(id string) (Snapshot, error) {
	r, err := s.submit(s.shardFor(id), request{op: opDelete, id: id})
	if err != nil {
		return Snapshot{}, err
	}
	return r.snap, nil
}

// List returns a snapshot of every live session, shard by shard.
func (s *Server) List() ([]Snapshot, error) {
	var out []Snapshot
	for _, sh := range s.shards {
		r, err := s.submit(sh, request{op: opList})
		if err != nil {
			return nil, err
		}
		out = append(out, r.snaps...)
	}
	return out, nil
}

// Drain gracefully stops the server: new requests are refused with
// ErrDraining, every request already admitted to a shard queue is
// finished (no in-flight step is dropped), and the shard goroutines
// exit. Idempotent; returns ctx.Err if the context expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.gate.mu.Lock()
	if s.gate.closed {
		s.gate.mu.Unlock()
	} else {
		s.gate.closed = true
		s.gate.mu.Unlock()
		// The write lock above excluded every in-progress submit, so no
		// goroutine can be between its gate check and its enqueue: the
		// queues can be closed safely and everything already in them
		// will be answered.
		s.reg.Counter("server.drains").Inc()
		for _, sh := range s.shards {
			close(sh.reqs)
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// run is one shard's goroutine: it owns sh.sessions and processes its
// queue in batches until the queue is closed and empty.
func (s *Server) run(sh *shard) {
	defer s.wg.Done()
	batch := make([]request, 0, s.cfg.BatchSize)
	for req := range sh.reqs {
		// Drain whatever else is already queued, up to the batch cap, so
		// one wakeup amortizes over many requests.
		batch = append(batch[:0], req)
		for len(batch) < s.cfg.BatchSize {
			extra, ok := tryRecv(sh.reqs)
			if !ok {
				break
			}
			batch = append(batch, extra)
		}
		s.reg.Counter("server.batches").Inc()
		s.reg.Counter("server.batched_reqs").Add(int64(len(batch)))
		s.processBatch(sh, batch)
	}
}

// tryRecv receives without blocking. A closed channel yields ok=false
// once empty, which ends the enclosing range loop on the next iteration.
func tryRecv(ch chan request) (request, bool) {
	select {
	case req, open := <-ch:
		if !open {
			return request{}, false
		}
		return req, true
	default:
		return request{}, false
	}
}

// processBatch executes a drained batch in admission order, coalescing
// adjacent step requests for the same session into one advance (each
// coalesced request still gets its own reply, carrying the post-advance
// snapshot). Adjacency — not whole-batch grouping — preserves ordering
// against deletes and inspects in the same batch.
func (s *Server) processBatch(sh *shard, batch []request) {
	for i := 0; i < len(batch); {
		req := batch[i]
		if req.op != opStep {
			batch[i].reply <- s.apply(sh, req)
			i++
			continue
		}
		j := i + 1
		slots := req.slots
		for j < len(batch) && batch[j].op == opStep && batch[j].id == req.id {
			slots += batch[j].slots
			j++
		}
		if j > i+1 {
			s.reg.Counter("server.steps.coalesced").Add(int64(j - i - 1))
		}
		r := s.applyStep(sh, req.id, slots)
		for k := i; k < j; k++ {
			batch[k].reply <- r
		}
		i = j
	}
}

// apply executes one non-step request on the shard's session table.
func (s *Server) apply(sh *shard, req request) reply {
	switch req.op {
	case opCreate:
		sess, err := newSession(req.id, req.cfg)
		if err != nil {
			s.reg.Counter("server.sessions.rejected").Inc()
			return reply{err: err}
		}
		sh.sessions[req.id] = sess
		s.live.Add(1)
		s.reg.Counter("server.sessions.created").Inc()
		return reply{snap: sess.snapshot(false)}
	case opRun:
		sess, ok := sh.sessions[req.id]
		if !ok {
			return reply{err: fmt.Errorf("%w: %s", ErrNotFound, req.id)}
		}
		slotsBefore, stepsBefore := sess.slots, sess.steps
		err := sess.runToEnd()
		s.reg.Counter("server.slots").Add(int64(sess.slots - slotsBefore))
		s.reg.Counter("server.steps").Add(int64(sess.steps - stepsBefore))
		if err != nil {
			return reply{err: err}
		}
		s.noteProgress(sess)
		return reply{snap: sess.snapshot(false)}
	case opInspect:
		sess, ok := sh.sessions[req.id]
		if !ok {
			return reply{err: fmt.Errorf("%w: %s", ErrNotFound, req.id)}
		}
		return reply{snap: sess.snapshot(req.trace)}
	case opDelete:
		sess, ok := sh.sessions[req.id]
		if !ok {
			return reply{err: fmt.Errorf("%w: %s", ErrNotFound, req.id)}
		}
		delete(sh.sessions, req.id)
		s.live.Add(-1)
		s.reg.Counter("server.sessions.deleted").Inc()
		return reply{snap: sess.snapshot(false)}
	case opReload:
		sess, ok := sh.sessions[req.id]
		if !ok {
			return reply{err: fmt.Errorf("%w: %s", ErrNotFound, req.id)}
		}
		st, err := sess.reload(req.topo)
		if err != nil {
			return reply{err: err}
		}
		// Fold the incremental engine's work profile into the registry so
		// /metrics exposes churn cost alongside throughput.
		s.reg.Counter("server.sessions.reloaded").Inc()
		s.reg.Counter("dyn.touched").Add(int64(st.Touched))
		s.reg.Counter("dyn.splits").Add(int64(st.Splits))
		s.reg.Counter("dyn.merges").Add(int64(st.Merges))
		s.reg.Counter("dyn.relabeled").Add(int64(st.Relabeled))
		if st.Rebuild {
			s.reg.Counter("dyn.rebuilds").Inc()
		}
		return reply{snap: sess.snapshot(false)}
	case opList:
		snaps := make([]Snapshot, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			snaps = append(snaps, sess.snapshot(false))
		}
		return reply{snaps: snaps}
	case opBarrier:
		if req.ack != nil {
			close(req.ack)
		}
		<-req.block
		return reply{}
	default:
		return reply{err: fmt.Errorf("server: unknown op %d", req.op)}
	}
}

// applyStep advances one session by the (possibly coalesced) slot count.
func (s *Server) applyStep(sh *shard, id string, slots int) reply {
	sess, ok := sh.sessions[id]
	if !ok {
		return reply{err: fmt.Errorf("%w: %s", ErrNotFound, id)}
	}
	stepsBefore := sess.steps
	consumed, err := sess.advance(slots)
	s.reg.Counter("server.slots").Add(int64(consumed))
	s.reg.Counter("server.steps").Add(int64(sess.steps - stepsBefore))
	if err != nil {
		return reply{err: err}
	}
	s.noteProgress(sess)
	return reply{snap: sess.snapshot(false)}
}

// noteProgress folds a finished session's verdict counters into the
// registry the first time it is seen finished.
func (s *Server) noteProgress(sess *session) {
	if sess.res == nil || sess.counted {
		return
	}
	sess.counted = true
	s.reg.Counter("server.sessions.finished").Inc()
	switch {
	case sess.res.Violation != nil:
		s.reg.Counter("server.sessions.violated").Inc()
	case sess.res.Done:
		s.reg.Counter("server.sessions.converged").Inc()
	}
}
