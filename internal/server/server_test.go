package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// parkShard parks shard i's goroutine behind a barrier request and
// returns only once the shard is provably parked (so later enqueues
// cannot join the barrier's batch). The returned func releases it.
func parkShard(t *testing.T, s *Server, i int) (release func()) {
	t.Helper()
	block := make(chan struct{})
	ack := make(chan struct{})
	s.shards[i].reqs <- request{op: opBarrier, block: block, ack: ack, reply: make(chan reply, 1)}
	select {
	case <-ack:
	case <-time.After(5 * time.Second):
		t.Fatal("shard never picked up the barrier")
	}
	return func() { close(block) }
}

func drainOrFail(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func selectConfig(seed int64) SessionConfig {
	cfg := SessionConfig{Topology: "gen fig2", Kind: "select"}
	cfg.Config.Seed = seed
	return cfg
}

// diningConfig builds a session that never converges within the test
// (astronomical meal target, huge slot budget), so every advance of k
// slots consumes exactly k — the currency the no-dropped-steps test
// counts in.
func diningConfig(seed int64) SessionConfig {
	cfg := SessionConfig{Topology: "gen dining 5", Kind: "dining", Meals: 1 << 30}
	cfg.Config.Seed = seed
	cfg.Config.MaxSlots = 1 << 40
	return cfg
}

func TestSessionLifecycle(t *testing.T) {
	s := New(Config{Shards: 2})
	defer drainOrFail(t, s)

	snap, err := s.Create(selectConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Kind != "select" || snap.Finished {
		t.Fatalf("bad create snapshot: %+v", snap)
	}
	if got := s.Sessions(); got != 1 {
		t.Fatalf("Sessions() = %d, want 1", got)
	}

	snap, err = s.Step(snap.ID, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Slots != 3 {
		t.Fatalf("after Step(3): slots = %d, want 3", snap.Slots)
	}

	snap, err = s.Run(snap.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Finished {
		t.Fatalf("after Run: not finished: %+v", snap)
	}
	if !snap.Done {
		t.Fatalf("fig2 SELECT should converge, got %+v", snap)
	}
	if snap.Fingerprint == "" {
		t.Fatal("finished session must carry a fingerprint")
	}

	insp, err := s.Inspect(snap.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(insp.Schedule) != snap.Slots {
		t.Fatalf("trace length %d != slots %d", len(insp.Schedule), snap.Slots)
	}

	if _, err := s.Delete(snap.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.Sessions(); got != 0 {
		t.Fatalf("Sessions() after delete = %d, want 0", got)
	}
	if _, err := s.Step(snap.ID, 1, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("step after delete: err = %v, want ErrNotFound", err)
	}
	if snaps, err := s.List(); err != nil || len(snaps) != 0 {
		t.Fatalf("List() = %v, %v; want empty", snaps, err)
	}
}

func TestSessionBadConfigs(t *testing.T) {
	s := New(Config{Shards: 1})
	defer drainOrFail(t, s)
	cases := []SessionConfig{
		{},
		{Topology: "gen fig2", Kind: "mystery"},
		{Topology: "gen nope 3", Kind: "select"},
		{Topology: "gen fig2", Kind: "select", Instr: "z"},
		{Topology: "gen fig2", Kind: "select", SchedClass: "warped"},
		func() SessionConfig {
			c := selectConfig(0)
			c.Config.SchedKind = "sorted"
			return c
		}(),
		func() SessionConfig {
			c := selectConfig(0)
			c.Config.FaultClasses = "gamma-rays"
			return c
		}(),
	}
	for i, cfg := range cases {
		if _, err := s.Create(cfg); !errors.Is(err, ErrBadSession) {
			t.Errorf("case %d: err = %v, want ErrBadSession", i, err)
		}
	}
	if got := s.Sessions(); got != 0 {
		t.Fatalf("rejected creates must not register sessions, got %d", got)
	}
}

// TestDrainNoDroppedSteps hammers live sessions from concurrent clients
// while the server drains mid-flight. Every admitted step must be
// applied and answered: afterwards the server.slots counter equals the
// slot total acknowledged by successful replies, and nothing hangs.
func TestDrainNoDroppedSteps(t *testing.T) {
	s := New(Config{Shards: 4, QueueDepth: 64, BatchSize: 8})
	const sessions = 16
	ids := make([]string, sessions)
	for i := range ids {
		snap, err := s.Create(diningConfig(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}

	const clients = 8
	const slotsPerReq = 3
	var acked atomic.Int64 // slots acknowledged by successful replies
	var rejected atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := s.Step(ids[(c+i)%sessions], slotsPerReq, "")
				switch {
				case err == nil:
					acked.Add(slotsPerReq)
				case errors.Is(err, ErrDraining):
					rejected.Add(1)
					return
				case errors.Is(err, ErrBusy):
					rejected.Add(1)
				default:
					t.Errorf("unexpected step error: %v", err)
					return
				}
			}
		}(c)
	}

	time.Sleep(20 * time.Millisecond) // let the clients build up traffic
	drainOrFail(t, s)
	close(stop)
	wg.Wait()

	if got := s.inflight.Load(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
	applied := s.Registry().Counter("server.slots").Value()
	if applied != acked.Load() {
		t.Fatalf("server applied %d slots but clients were acknowledged %d — steps dropped or double-applied",
			applied, acked.Load())
	}
	if applied == 0 {
		t.Fatal("test never applied any steps; nothing was exercised")
	}
	t.Logf("applied=%d slots, %d rejected requests", applied, rejected.Load())
}

func TestDrainRefusesNewWorkAndIsIdempotent(t *testing.T) {
	s := New(Config{Shards: 2})
	snap, err := s.Create(selectConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	drainOrFail(t, s)
	if _, err := s.Create(selectConfig(2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after drain: err = %v, want ErrDraining", err)
	}
	if _, err := s.Step(snap.ID, 1, ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("step after drain: err = %v, want ErrDraining", err)
	}
	drainOrFail(t, s) // second drain must return cleanly
}

// TestBackpressure429 fills the one shard's bounded queue behind a
// parked barrier request and checks the next request is rejected
// immediately with ErrBusy rather than queued or blocked.
func TestBackpressure429(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 2})
	defer drainOrFail(t, s)
	snap, err := s.Create(diningConfig(0))
	if err != nil {
		t.Fatal(err)
	}

	// Park the shard goroutine behind a barrier.
	release := parkShard(t, s, 0)
	deadline := time.Now().Add(5 * time.Second)

	// Fill the queue to capacity with steps that cannot be served yet.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Step(snap.ID, 1, "")
			errs <- err
		}()
	}
	for len(s.shards[0].reqs) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next request must bounce with ErrBusy.
	if _, err := s.Step(snap.ID, 1, ""); !errors.Is(err, ErrBusy) {
		t.Fatalf("step against full queue: err = %v, want ErrBusy", err)
	}
	if got := s.Registry().Counter("server.reject.busy").Value(); got == 0 {
		t.Fatal("busy rejection not counted")
	}

	// Release the shard; the queued steps must now complete.
	release()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("queued step failed after release: %v", err)
		}
	}
}

func TestTenantRateLimit(t *testing.T) {
	clock := time.Unix(1000, 0)
	s := New(Config{
		Shards:     1,
		RatePerSec: 1,
		Burst:      2,
		Now:        func() time.Time { return clock },
	})
	defer drainOrFail(t, s)

	mk := func(tenant string) error {
		cfg := selectConfig(0)
		cfg.Tenant = tenant
		_, err := s.Create(cfg)
		return err
	}
	// Burst of 2, then the bucket is dry.
	if err := mk("alice"); err != nil {
		t.Fatal(err)
	}
	if err := mk("alice"); err != nil {
		t.Fatal(err)
	}
	if err := mk("alice"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third create: err = %v, want ErrRateLimited", err)
	}
	// Another tenant has its own bucket.
	if err := mk("bob"); err != nil {
		t.Fatalf("bob should not share alice's bucket: %v", err)
	}
	// One second refills one token.
	clock = clock.Add(time.Second)
	if err := mk("alice"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := mk("alice"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("bucket should be dry again, got %v", err)
	}
	if got := s.Registry().Counter("server.reject.ratelimit").Value(); got != 2 {
		t.Fatalf("ratelimit rejections = %d, want 2", got)
	}
}

// TestSessionReplayDeterminism creates equal-seeded sessions — one
// advanced in ragged increments, one run in a single stroke — and
// requires byte-identical schedule traces, fault logs, and final
// fingerprints. Run under -race -count=2 in CI.
func TestSessionReplayDeterminism(t *testing.T) {
	s := New(Config{Shards: 4})
	defer drainOrFail(t, s)

	mk := func() SessionConfig {
		cfg := SessionConfig{Topology: "gen dining 6", Kind: "dining", Meals: 2}
		cfg.Config.Seed = 42
		cfg.Config.SchedKind = "shuffled"
		cfg.Config.FaultClasses = "lockdrop"
		cfg.Config.MaxSlots = 4000
		return cfg
	}
	a, err := s.Create(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Create(mk())
	if err != nil {
		t.Fatal(err)
	}

	// Ragged advance of a: primes give uneven batch boundaries.
	for _, k := range []int{1, 2, 3, 5, 7, 11, 13} {
		if _, err := s.Step(a.ID, k, ""); err != nil {
			t.Fatal(err)
		}
	}
	fa, err := s.Run(a.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := s.Run(b.ID, "")
	if err != nil {
		t.Fatal(err)
	}

	ta, err := s.Inspect(a.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.Inspect(b.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Fingerprint != fb.Fingerprint {
		t.Fatal("equal-seeded sessions ended in different states")
	}
	if fmt.Sprint(ta.Schedule) != fmt.Sprint(tb.Schedule) {
		t.Fatalf("schedule traces diverge:\n a: %v\n b: %v", ta.Schedule, tb.Schedule)
	}
	if fmt.Sprint(ta.Faults) != fmt.Sprint(tb.Faults) {
		t.Fatalf("fault logs diverge:\n a: %v\n b: %v", ta.Faults, tb.Faults)
	}
	if fa.Slots != fb.Slots || fa.Steps != fb.Steps || fa.Done != fb.Done {
		t.Fatalf("outcomes diverge: %+v vs %+v", fa, fb)
	}
	if len(ta.Schedule) == 0 || len(ta.Faults) == 0 {
		t.Fatalf("want a non-trivial trace with faults, got %d slots / %d faults",
			len(ta.Schedule), len(ta.Faults))
	}
}

func TestMaxSessions(t *testing.T) {
	s := New(Config{Shards: 1, MaxSessions: 2})
	defer drainOrFail(t, s)
	if _, err := s.Create(selectConfig(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(selectConfig(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(selectConfig(2)); !errors.Is(err, ErrFull) {
		t.Fatalf("third create: err = %v, want ErrFull", err)
	}
	// Deleting frees capacity.
	snaps, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(snaps[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(selectConfig(3)); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

// TestStepCoalescing checks that step requests for one session admitted
// in one batch are merged into a single advance: with a parked shard,
// three queued steps must come back with one shared batch index.
func TestStepCoalescing(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8})
	defer drainOrFail(t, s)
	snap, err := s.Create(diningConfig(0))
	if err != nil {
		t.Fatal(err)
	}

	release := parkShard(t, s, 0)
	deadline := time.Now().Add(5 * time.Second)

	var wg sync.WaitGroup
	snaps := make(chan Snapshot, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.Step(snap.ID, 2, "")
			if err != nil {
				t.Errorf("step: %v", err)
				return
			}
			snaps <- got
		}()
	}
	for len(s.shards[0].reqs) != 3 {
		if time.Now().After(deadline) {
			t.Fatal("steps never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	close(snaps)

	for got := range snaps {
		// All three were coalesced into one 6-slot advance and share its
		// post-advance snapshot.
		if got.Slots != 6 || got.Batches != 1 {
			t.Fatalf("coalesced snapshot = slots %d batches %d, want 6 slots in 1 batch", got.Slots, got.Batches)
		}
	}
	if got := s.Registry().Counter("server.steps.coalesced").Value(); got != 2 {
		t.Fatalf("coalesced counter = %d, want 2", got)
	}
}

func TestSessionTopologyReload(t *testing.T) {
	s := New(Config{Shards: 2})
	defer drainOrFail(t, s)

	cfg := SessionConfig{Topology: "gen dining 6", Kind: "dining", Meals: 1}
	cfg.Config.MaxSlots = 1 << 20
	snap, err := s.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := snap.ID
	if snap.Procs != 6 || snap.Reloads != 0 || snap.Relabel != nil {
		t.Fatalf("bad create snapshot: %+v", snap)
	}
	if _, err := s.Step(id, 5, ""); err != nil {
		t.Fatal(err)
	}

	snap, err = s.Reload(id, "gen dining 9", "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Procs != 9 {
		t.Fatalf("after reload: procs = %d, want 9", snap.Procs)
	}
	if snap.Slots != 0 {
		t.Fatalf("reload must restart the run: slots = %d", snap.Slots)
	}
	if snap.Reloads != 1 || snap.Relabel == nil {
		t.Fatalf("reload stats missing: %+v", snap)
	}
	// The dining ring stays a ring: one processor class, one variable class, and
	// growing it must not split anything.
	if snap.Relabel.Classes != 2 || snap.Relabel.Splits != 0 {
		t.Fatalf("dining 6 → dining 9 relabel = %+v, want 2 classes, 0 splits", snap.Relabel)
	}
	if snap.Relabel.Touched == 0 {
		t.Fatalf("reload touched no slots: %+v", snap.Relabel)
	}

	// The reloaded session still runs to a verdict on the new topology.
	snap, err = s.Run(id, "")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Finished || !snap.Done {
		t.Fatalf("reloaded dining 9 session should converge: %+v", snap)
	}
	insp, err := s.Inspect(id, false)
	if err != nil {
		t.Fatal(err)
	}
	if insp.Reloads != 1 || insp.Relabel == nil {
		t.Fatalf("inspect lost reload stats: %+v", insp)
	}

	// Incremental work profile lands in the /metrics registry.
	if got := s.Registry().Counter("server.sessions.reloaded").Value(); got != 1 {
		t.Fatalf("server.sessions.reloaded = %d, want 1", got)
	}
	if got := s.Registry().Counter("dyn.touched").Value(); got == 0 {
		t.Fatal("dyn.touched counter never incremented")
	}

	// Failure modes: unknown session, mismatched names, bad syntax. None
	// may disturb the session.
	if _, err := s.Reload("nope", "gen ring 3", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reload unknown id: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Reload(id, "gen star 4", ""); !errors.Is(err, ErrBadSession) {
		t.Fatalf("reload with mismatched names: err = %v, want ErrBadSession", err)
	}
	if _, err := s.Reload(id, "nonsense", ""); !errors.Is(err, ErrBadSession) {
		t.Fatalf("reload with bad syntax: err = %v, want ErrBadSession", err)
	}
	insp, err = s.Inspect(id, false)
	if err != nil {
		t.Fatal(err)
	}
	if insp.Procs != 9 || insp.Reloads != 1 {
		t.Fatalf("failed reloads disturbed the session: %+v", insp)
	}
}
