package server

import (
	"sync"
	"time"
)

// limiter is a per-tenant token-bucket rate limiter. Buckets are
// interned on first use and refill continuously at rate tokens/second up
// to burst; one request costs one token. The clock is injected so tests
// can drive refills deterministically.
type limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64, now func() time.Time) *limiter {
	return &limiter{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// allow charges one token from tenant's bucket, reporting whether the
// request may proceed.
func (l *limiter) allow(tenant string) bool {
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[tenant] = b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
