package simsym_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"simsym"
	"simsym/internal/adversary"
	"simsym/internal/dining"
	"simsym/internal/mc"
)

func TestOkamotoSamplesFacade(t *testing.T) {
	if got := simsym.OkamotoSamples(0.01, 0.05); got != 18445 {
		t.Errorf("OkamotoSamples(0.01, 0.05) = %d, want 18445", got)
	}
}

func TestCheckStatisticalDiningSafeWithoutFaults(t *testing.T) {
	// Without fault injection the lock discipline makes exclusion
	// breaches impossible: every sampled run is clean and the interval
	// around zero is the whole claim.
	sys, err := simsym.DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckStatisticalDining(sys, prog,
		simsym.WithConfidence(0.1, 0.05), simsym.WithDepth(200), simsym.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe || !rep.Complete || rep.Violations != 0 {
		t.Fatalf("faultless dining should sample clean: %+v", rep)
	}
	if rep.Samples != rep.Target || rep.Samples != simsym.OkamotoSamples(0.1, 0.05) {
		t.Errorf("samples = %d, want the Okamoto target %d", rep.Samples, rep.Target)
	}
	if rep.Estimate != 0 || rep.HalfWidth > 0.1 {
		t.Errorf("estimate %v ± %v, want 0 with half-width <= 0.1", rep.Estimate, rep.HalfWidth)
	}
}

func TestCheckStatisticalDiningLockDropViolationReplays(t *testing.T) {
	// Lock drops are how exclusion actually breaks: a dropped fork can
	// be re-grabbed while its holder still eats. The reported trace
	// (schedule + fault log) must replay to the same violation through
	// the adversary harness.
	sys, err := simsym.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simsym.DiningProgram("left", "right", 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckStatisticalDining(sys, prog,
		simsym.WithConfidence(0.1, 0.05), simsym.WithDepth(600),
		simsym.WithFaults("lockdrop"), simsym.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe || rep.Violations == 0 {
		t.Fatalf("lock-drop runs should breach exclusion sometimes: %+v", rep)
	}
	if !strings.Contains(rep.Violation, "eating together") {
		t.Fatalf("violation = %q, want an exclusion message", rep.Violation)
	}
	if len(rep.Schedule) == 0 {
		t.Fatal("counterexample schedule missing")
	}
	if len(rep.Faults) == 0 {
		t.Fatal("a lock-drop violation needs at least one fault in its log")
	}

	excl, err := dining.LocalExclusionPred(sys)
	if err != nil {
		t.Fatal(err)
	}
	h := &adversary.Harness{
		Sys:       sys,
		Instr:     simsym.InstrL,
		Prog:      prog,
		Sched:     adversary.FromSlice(rep.Schedule),
		Faults:    adversary.NewReplayer(rep.Faults),
		MaxSlots:  len(rep.Schedule),
		ProcPreds: []mc.ProcPredicate{excl},
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("replayed trace did not reproduce the violation")
	}
	if res.Violation.Reason != rep.Violation {
		t.Errorf("replayed violation %q, want %q", res.Violation.Reason, rep.Violation)
	}
}

// TestCheckStatisticalDeterminismMatrix pins the PR's headline guarantee:
// the same seed produces a byte-identical report at every worker count
// (per-sample seed streams plus index-order merging), including when
// violations occur and the index-least one must win.
func TestCheckStatisticalDeterminismMatrix(t *testing.T) {
	sys, err := simsym.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simsym.DiningProgram("left", "right", 3)
	if err != nil {
		t.Fatal(err)
	}
	var reports []*simsym.StatReport
	for _, workers := range []int{1, 4} {
		rep, err := simsym.CheckStatisticalDining(sys, prog,
			simsym.WithConfidence(0.1, 0.05), simsym.WithDepth(400),
			simsym.WithFaults("lockdrop"), simsym.WithSeed(42),
			simsym.WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports = append(reports, rep)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Errorf("worker counts disagree:\n  w=1: %+v\n  w=4: %+v", reports[0], reports[1])
	}
}

func TestCheckStatisticalSelection(t *testing.T) {
	sys := simsym.Fig1()
	prog, _, err := simsym.BuildSelectOpts(sys, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckStatistical(sys, simsym.InstrL, prog,
		simsym.WithConfidence(0.1, 0.05), simsym.WithDepth(300),
		simsym.WithScheduleKind("shuffled"), simsym.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe || !rep.Complete {
		t.Fatalf("Algorithm 4 on Fig1 should sample clean: %+v", rep)
	}
	if rep.Stats.Steps == 0 || rep.Stats.Slots == 0 {
		t.Error("sampled runs should have stepped")
	}
}

func TestCheckStatisticalSampleCapIsPartial(t *testing.T) {
	sys, err := simsym.DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckStatisticalDining(sys, prog,
		simsym.WithConfidence(0.1, 0.05), simsym.WithDepth(100),
		simsym.WithSamples(25), simsym.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete || rep.Exhausted != "samples" {
		t.Fatalf("capped run should be partial: %+v", rep)
	}
	if rep.Samples != 25 {
		t.Errorf("samples = %d, want the cap 25", rep.Samples)
	}
	if rep.HalfWidth <= 0.1 {
		t.Errorf("half-width %v should exceed the requested epsilon", rep.HalfWidth)
	}
}

func TestCheckStatisticalBadArgs(t *testing.T) {
	sys, err := simsym.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []simsym.Option
	}{
		{"bad schedule kind", []simsym.Option{simsym.WithScheduleKind("adversarial")}},
		{"epsilon out of range", []simsym.Option{simsym.WithConfidence(1.5, 0.05)}},
		{"negative depth", []simsym.Option{simsym.WithDepth(-1)}},
		{"negative samples", []simsym.Option{simsym.WithSamples(-1)}},
		{"unknown fault class", []simsym.Option{simsym.WithFaults("gamma-rays")}},
	}
	for _, c := range cases {
		if _, err := simsym.CheckStatisticalDining(sys, prog, c.opts...); !errors.Is(err, simsym.ErrBadArgs) {
			t.Errorf("%s: err = %v, want ErrBadArgs", c.name, err)
		}
	}
	if _, err := simsym.CheckStatistical(nil, simsym.InstrL, prog); !errors.Is(err, simsym.ErrBadArgs) {
		t.Errorf("nil system: err = %v, want ErrBadArgs", err)
	}
	if _, err := simsym.CheckStatisticalDining(sys, nil); !errors.Is(err, simsym.ErrBadArgs) {
		t.Errorf("nil program: err = %v, want ErrBadArgs", err)
	}
}
