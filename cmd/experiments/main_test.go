package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "E7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FLP adversary") {
		t.Errorf("missing E7 table:\n%s", out.String())
	}
	if strings.Contains(out.String(), "E1:") {
		t.Error("-only should filter other experiments")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "E99"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
