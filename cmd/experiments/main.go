// Command experiments regenerates every table of EXPERIMENTS.md: one
// experiment per evaluation artifact of the paper (figures 1–5, Theorems
// 1/5/10/11, Algorithms 2–4, the section 9 hierarchy, the section 8
// randomization and encapsulated-asymmetry claims, and the section 6
// message-passing/CSP results).
//
// Usage:
//
//	experiments            # run everything
//	experiments -only E4   # run one experiment
//	experiments -progress  # stream model-checker progress to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"simsym/internal/experiments"
	"simsym/internal/mc"
	"simsym/internal/obsflag"
)

// registry lists the experiments in order with their default parameters.
var registry = []struct {
	id  string
	run func() (*experiments.Table, error)
}{
	{"E1", experiments.E1Fig1},
	{"E2", func() (*experiments.Table, error) { return experiments.E2Alibi(5) }},
	{"E3", experiments.E3Mimic},
	{"E4", experiments.E4DP5},
	{"E5", func() (*experiments.Table, error) { return experiments.E5DP6(10_000_000) }},
	{"E6", func() (*experiments.Table, error) {
		return experiments.E6Scaling([]int{64, 256, 1024, 4096, 16384, 65536}, 1024)
	}},
	{"E7", experiments.E7FLP},
	{"E8", experiments.E8Hierarchy},
	{"E9", func() (*experiments.Table, error) { return experiments.E9Randomized(200) }},
	{"E10", experiments.E10Orbits},
	{"E11", func() (*experiments.Table, error) { return experiments.E11EliteL(5) }},
	{"E12", experiments.E12MsgPass},
	{"E13", experiments.E13Encapsulated},
	{"E14", experiments.E14CSP},
	{"E15", func() (*experiments.Table, error) { return experiments.E15AlgorithmS(5) }},
	{"E16", func() (*experiments.Table, error) { return experiments.E16Statistical(0.05) }},
	{"E17", func() (*experiments.Table, error) {
		return experiments.E17Churn([]int{10_000, 100_000, 1_000_000}, 2000)
	}},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment (E1..E17)")
	progress := fs.Bool("progress", false, "stream model-checker progress snapshots to stderr")
	obsFlags := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := obsFlags.Recorder()
	if err != nil {
		return err
	}
	experiments.Obs = rec
	if *progress {
		experiments.MCProgress = func(s mc.Stats) {
			fmt.Fprintf(os.Stderr, "\rmc: %d states, depth %d, %.0f states/s, %d dedup hits ",
				s.StatesExplored, s.Depth, s.StatesPerSec, s.DedupHits)
		}
	}

	printed := 0
	for _, entry := range registry {
		if *only != "" && entry.id != *only {
			continue
		}
		tbl, err := entry.run()
		if err != nil {
			return fmt.Errorf("%s: %w", entry.id, err)
		}
		fmt.Fprintln(out, tbl.Render())
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return obsFlags.Close(out)
}
