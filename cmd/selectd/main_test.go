package main

import (
	"strings"
	"testing"
)

func TestDecideAndRunQ(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig2", "-instr", "q", "-runs", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"solvable: true", "winner p3"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDecideUnsolvable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "ring 4", "-instr", "l"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solvable: false") {
		t.Errorf("ring should be unsolvable:\n%s", out.String())
	}
}

func TestDecideGeneralSchedules(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig2", "-instr", "q", "-sched", "general"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solvable: false") {
		t.Errorf("general schedules should be unsolvable:\n%s", out.String())
	}
}

func TestVerifyFlagOnL(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig1", "-instr", "l", "-runs", "1", "-verify", "-max-states", "600000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verification: safe") {
		t.Errorf("verification should pass within budget:\n%s", out.String())
	}
}

func TestArgErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig1", "-instr", "zzz"}, &out); err == nil {
		t.Error("bad instr should fail")
	}
	if err := run([]string{"-gen", "fig1", "-sched", "zzz"}, &out); err == nil {
		t.Error("bad sched should fail")
	}
	if err := run(nil, &out); err == nil {
		t.Error("missing system should fail")
	}
}

func TestFaultRunReplay(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig2", "-instr", "q", "-runs", "0",
		"-faults", "crash", "-seed", "7", "-replay"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"fault run (seed 7, faults crash)", "replay: byte-identical"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFaultRunRejectsUnknownClass(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig2", "-instr", "q", "-runs", "0",
		"-faults", "gremlins"}, &out); err == nil {
		t.Fatal("unknown fault class should be rejected")
	}
}
