// Command selectd decides the selection problem for a system under a
// chosen model and, when solvable, generates the paper's SELECT program
// (Algorithm 2 in Q, Algorithm 4 in L), runs it under fair schedules,
// and reports the winner.
//
// Usage:
//
//	selectd -gen 'fig2' -instr q
//	selectd -spec sys.txt -instr l -sched fair -runs 10 -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"simsym/internal/adversary"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/obs"
	"simsym/internal/obsflag"
	"simsym/internal/sched"
	"simsym/internal/selection"
	"simsym/internal/sysdsl"
	"simsym/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "selectd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("selectd", flag.ContinueOnError)
	spec := fs.String("spec", "", "system description file (sysdsl format, - for stdin)")
	gen := fs.String("gen", "", "generator directive, e.g. 'fig2'")
	instr := fs.String("instr", "q", "instruction set: s, l, or q")
	schedFlag := fs.String("sched", "fair", "schedule class: general, fair, or bounded")
	runs := fs.Int("runs", 5, "fair executions of the generated program")
	verify := fs.Bool("verify", false, "model-check Uniqueness and Stability over all schedules")
	maxStates := fs.Int("max-states", 300_000, "model-checker state budget")
	faults := fs.String("faults", "", "comma-separated fault classes to inject: crash, stall, lockdrop")
	seed := fs.Int64("seed", 1, "seed for the fault-injected run (schedule and fault streams)")
	replay := fs.Bool("replay", false, "replay the fault-injected run's trace and verify it is byte-identical")
	obsFlags := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := obsFlags.Recorder()
	if err != nil {
		return err
	}

	sys, err := loadSystem(*spec, *gen)
	if err != nil {
		return err
	}
	is, err := parseInstr(*instr)
	if err != nil {
		return err
	}
	sc, err := parseSched(*schedFlag)
	if err != nil {
		return err
	}

	d, err := selection.DecideWith(sys, is, sc, rec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "model: %v / %v\n", is, sc)
	fmt.Fprintf(out, "solvable: %v\n", d.Solvable)
	fmt.Fprintf(out, "reason: %s\n", d.Reason)
	if len(d.UniqueProcs) > 0 {
		fmt.Fprintf(out, "distinguished processors: %v\n", d.UniqueProcs)
	}
	if len(d.Elite) > 0 {
		fmt.Fprintf(out, "ELITE: %v over %d versions\n", d.Elite, d.NumVersions)
	}
	if !d.Solvable || (is != system.InstrQ && is != system.InstrL) {
		return obsFlags.Close(out)
	}

	prog, _, err := selection.SelectWith(sys, is, sc, rec)
	if err != nil {
		return err
	}
	for seed := 0; seed < *runs; seed++ {
		m, err := machine.New(sys, is, prog)
		if err != nil {
			return err
		}
		m.Observe(rec)
		rng := rand.New(rand.NewSource(int64(seed)))
		rounds := 0
		for !m.AllHalted() && rounds < 5000 {
			round, err := sched.ShuffledRounds(rng, sys.NumProcs(), 1)
			if err != nil {
				return err
			}
			if _, err := m.Run(round); err != nil {
				return err
			}
			rounds++
		}
		sel := m.SelectedProcs()
		winner := "none"
		if len(sel) == 1 {
			winner = sys.ProcIDs[sel[0]]
		} else if len(sel) > 1 {
			winner = fmt.Sprintf("VIOLATION %v", sel)
		}
		fmt.Fprintf(out, "run %d: winner %s after %d rounds\n", seed, winner, rounds)
	}

	if *faults != "" {
		if err := runFaulted(out, sys, is, sc, *faults, *seed, *replay, rec); err != nil {
			return err
		}
	}

	if *verify {
		res, err := mc.Check(func() (*machine.Machine, error) {
			return machine.New(sys, is, prog)
		}, mc.Options{
			MaxStates:  *maxStates,
			StatePreds: []mc.StatePredicate{mc.UniquenessPred},
			TransPreds: []mc.TransitionPredicate{mc.StabilityPred},
			Obs:        rec,
		})
		if err != nil {
			fmt.Fprintf(out, "verification: inconclusive (%v)\n", err)
			return obsFlags.Close(out)
		}
		if res.Violation != nil {
			fmt.Fprintf(out, "verification: VIOLATION %s (schedule %v)\n",
				res.Violation.Reason, res.Violation.Schedule)
		} else {
			fmt.Fprintf(out, "verification: safe over %d states (complete=%v)\n",
				res.StatesExplored, res.Complete)
		}
	}
	return obsFlags.Close(out)
}

// runFaulted drives the SELECT program through the adversary harness
// with seeded fault injection, reporting convergence and any invariant
// violation, and optionally proving the trace replays byte-identically.
func runFaulted(out io.Writer, sys *system.System, is system.InstrSet, sc system.ScheduleClass, faults string, seed int64, replay bool, rec *obs.Recorder) error {
	spec, err := adversary.ParseSpec(faults, seed)
	if err != nil {
		return err
	}
	h, err := adversary.NewSelectHarness(sys, is, sc,
		adversary.Shuffled(rand.New(rand.NewSource(seed)), sys.NumProcs()))
	if err != nil {
		return err
	}
	h.Faults = adversary.NewFaults(spec, sys.NumProcs(), sys.NumVars())
	h.Obs = rec
	res, err := h.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fault run (seed %d, faults %s): steps=%d slots=%d events=%d done=%v\n",
		seed, faults, res.Steps, res.Slots, len(res.FaultLog), res.Done)
	for _, e := range res.FaultLog {
		if e.Kind != adversary.KindStall {
			fmt.Fprintf(out, "  fault %v\n", e)
		}
	}
	switch {
	case res.Violation != nil:
		fmt.Fprintf(out, "fault run: VIOLATION %s (slot %d, %d-slot trace recorded)\n",
			res.Violation.Reason, res.Violation.Slot, len(res.Schedule))
	case res.Done:
		sel := res.Final.SelectedProcs()
		winner := "none"
		if len(sel) == 1 {
			winner = sys.ProcIDs[sel[0]]
		}
		fmt.Fprintf(out, "fault run: converged, winner %s\n", winner)
	default:
		fmt.Fprintf(out, "fault run: no convergence within budget (faults may have blocked progress)\n")
	}
	if replay {
		rep, err := h.Replay(res)
		if err != nil {
			return err
		}
		if d := res.Diff(rep); d != "" {
			return fmt.Errorf("replay diverged: %s", d)
		}
		fmt.Fprintf(out, "replay: byte-identical (%d slots, %d fault events, fingerprint match)\n",
			rep.Slots, len(rep.FaultLog))
	}
	return nil
}

func parseInstr(s string) (system.InstrSet, error) {
	switch s {
	case "s":
		return system.InstrS, nil
	case "l":
		return system.InstrL, nil
	case "q":
		return system.InstrQ, nil
	default:
		return 0, fmt.Errorf("unknown instruction set %q (want s, l, or q)", s)
	}
}

func parseSched(s string) (system.ScheduleClass, error) {
	switch s {
	case "general":
		return system.SchedGeneral, nil
	case "fair":
		return system.SchedFair, nil
	case "bounded":
		return system.SchedBoundedFair, nil
	default:
		return 0, fmt.Errorf("unknown schedule class %q (want general, fair, or bounded)", s)
	}
}

func loadSystem(spec, gen string) (*system.System, error) {
	switch {
	case gen != "":
		return sysdsl.Parse("gen " + gen)
	case spec == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("reading stdin: %w", err)
		}
		return sysdsl.Parse(string(data))
	case spec != "":
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("reading spec: %w", err)
		}
		return sysdsl.Parse(string(data))
	default:
		return nil, fmt.Errorf("need -spec or -gen")
	}
}
