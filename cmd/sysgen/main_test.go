package main

import (
	"strings"
	"testing"
)

func TestDSLOutputRoundTrips(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "dining 5", "-mark", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "proc phil2 init=leader") {
		t.Errorf("mark missing:\n%s", got)
	}
	if !strings.Contains(got, "names left right") {
		t.Errorf("names line missing:\n%s", got)
	}
}

func TestDOTOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig3", "-format", "dot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph \"fig3\"") {
		t.Errorf("dot output wrong:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing -gen should fail")
	}
	if err := run([]string{"-gen", "fig1", "-format", "xml"}, &out); err == nil {
		t.Error("bad format should fail")
	}
	if err := run([]string{"-gen", "fig1", "-mark", "9"}, &out); err == nil {
		t.Error("mark out of range should fail")
	}
	if err := run([]string{"-gen", "nosuch"}, &out); err == nil {
		t.Error("bad generator should fail")
	}
}
