// Command sysgen emits generated systems in the sysdsl text format (or
// Graphviz DOT), for piping into simlabel / selectd or editing by hand.
//
// Usage:
//
//	sysgen -gen 'dining 5'                  # DSL to stdout
//	sysgen -gen 'ring 7' -mark 0            # mark a processor's init
//	sysgen -gen 'fig3' -format dot          # Graphviz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"simsym/internal/sysdsl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sysgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sysgen", flag.ContinueOnError)
	gen := fs.String("gen", "", "generator directive, e.g. 'ring 5', 'dining 5', 'fig2'")
	mark := fs.Int("mark", -1, "give this processor the initial state \"leader\"")
	format := fs.String("format", "dsl", "output format: dsl or dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gen == "" {
		return fmt.Errorf("need -gen")
	}
	sys, err := sysdsl.Parse("gen " + *gen)
	if err != nil {
		return err
	}
	if *mark >= 0 {
		if *mark >= sys.NumProcs() {
			return fmt.Errorf("-mark %d out of range (%d processors)", *mark, sys.NumProcs())
		}
		sys.ProcInit[*mark] = "leader"
	}
	switch *format {
	case "dsl":
		fmt.Fprint(out, sysdsl.Serialize(sys))
	case "dot":
		fmt.Fprint(out, sysdsl.DOT(sys, *gen))
	default:
		return fmt.Errorf("unknown format %q (want dsl or dot)", *format)
	}
	return nil
}
