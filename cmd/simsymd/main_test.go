package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoadgenSmall(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-loadgen", "-clients", "40", "-workers", "4", "-client-steps", "3",
		"-shards", "2", "-bench-out", benchPath,
	}, &buf)
	if err != nil {
		t.Fatalf("loadgen: %v\noutput:\n%s", err, buf.String())
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("bench JSON: %v\n%s", err, raw)
	}
	if res.Sessions != 40 {
		t.Fatalf("sessions = %d, want 40", res.Sessions)
	}
	if res.Steps < 40 { // select sessions may finish before 3 steps, but never 0
		t.Fatalf("steps = %d, want >= 40", res.Steps)
	}
	if res.SessionsPerSec <= 0 || res.ElapsedSec <= 0 {
		t.Fatalf("empty throughput numbers: %+v", res)
	}
	if res.StepP99Ms < res.StepP50Ms {
		t.Fatalf("p99 %v < p50 %v", res.StepP99Ms, res.StepP50Ms)
	}
}

func TestLoadgenDurationCap(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-loadgen", "-clients", "1000000", "-workers", "4",
		"-duration", "100ms", "-shards", "2",
	}, &buf)
	if err != nil {
		t.Fatalf("loadgen: %v\noutput:\n%s", err, buf.String())
	}
	var res benchResult
	dec := json.NewDecoder(strings.NewReader(afterFirstBrace(buf.String())))
	if err := dec.Decode(&res); err != nil {
		t.Fatalf("bench JSON: %v\n%s", err, buf.String())
	}
	if res.Sessions == 0 || res.Sessions >= 1000000 {
		t.Fatalf("duration cap did not bound the run: %d sessions", res.Sessions)
	}
}

// TestServeDrainViaAdmin boots the daemon on an ephemeral port, creates
// a session over HTTP, drains via the admin endpoint, and expects the
// serve loop to exit cleanly.
func TestServeDrainViaAdmin(t *testing.T) {
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shards", "2"}, buf)
	}()

	base := waitForAddr(t, buf)
	body := strings.NewReader(`{"topology": "gen fig2", "kind": "select"}`)
	resp, err := http.Post(base+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/admin/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v\noutput:\n%s", err, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("serve did not exit after drain\noutput:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "drained") {
		t.Fatalf("missing drain log line:\n%s", buf.String())
	}
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

func waitForAddr(t *testing.T, buf *syncBuffer) string {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			return "http://" + m[1]
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("daemon never reported its address:\n%s", buf.String())
	return ""
}

func afterFirstBrace(s string) string {
	if i := strings.IndexByte(s, '{'); i >= 0 {
		return s[i:]
	}
	return s
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
