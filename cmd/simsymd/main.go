// Command simsymd hosts many concurrent election/exclusion sessions in
// one daemon behind an HTTP/JSON API. Each session wraps one VM
// instance; sessions shard across a fixed goroutine pool, shards batch
// and coalesce step requests, full queues push back with 429, and
// SIGINT/SIGTERM (or POST /admin/drain) drains gracefully: in-flight
// steps finish, new sessions are refused, and the observability sinks
// flush before exit.
//
// Usage:
//
//	simsymd -addr :8080 -shards 16 -rate 100
//	simsymd -loadgen -clients 100000 -workers 256 -bench-out BENCH.json
//
// The loadgen mode drives simulated clients (create → step ×N →
// delete) against -target, or against a self-hosted in-process daemon
// when -target is empty, and reports sessions/sec plus client-side
// p50/p99 step latency as JSON.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"simsym/internal/obsflag"
	"simsym/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simsymd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simsymd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	shards := fs.Int("shards", 2*runtime.GOMAXPROCS(0), "session shard pool size")
	queue := fs.Int("queue", 1024, "per-shard request queue depth (full queue → 429)")
	batch := fs.Int("batch", 256, "max requests one shard wakeup drains as a batch")
	maxSessions := fs.Int("max-sessions", 1<<20, "live session cap (reached → 503)")
	rate := fs.Float64("rate", 0, "per-tenant request rate limit in req/s (0 = unlimited)")
	burst := fs.Float64("burst", 0, "per-tenant burst capacity (default 2×rate)")

	loadgen := fs.Bool("loadgen", false, "run the load generator instead of serving")
	clients := fs.Int("clients", 100_000, "loadgen: simulated clients (one session each)")
	workers := fs.Int("workers", 8*runtime.GOMAXPROCS(0), "loadgen: concurrent worker goroutines")
	clientSteps := fs.Int("client-steps", 4, "loadgen: step requests per client session")
	duration := fs.Duration("duration", 0, "loadgen: wall-clock cap (0 = run every client)")
	topology := fs.String("topology", "fig2", "loadgen: generator directive for session topologies")
	kind := fs.String("kind", "select", "loadgen: session kind (select or dining)")
	target := fs.String("target", "", "loadgen: base URL of a running daemon (empty = self-host)")
	benchOut := fs.String("bench-out", "", "loadgen: also write the results JSON to `FILE`")
	obsFlags := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := obsFlags.Recorder()
	if err != nil {
		return err
	}
	cfg := server.Config{
		Shards:      *shards,
		QueueDepth:  *queue,
		BatchSize:   *batch,
		MaxSessions: *maxSessions,
		RatePerSec:  *rate,
		Burst:       *burst,
		Obs:         rec,
	}

	if *loadgen {
		lg := loadgenConfig{
			Target:      *target,
			Clients:     *clients,
			Workers:     *workers,
			ClientSteps: *clientSteps,
			Duration:    *duration,
			Topology:    *topology,
			Kind:        *kind,
			BenchOut:    *benchOut,
		}
		if err := runLoadgen(out, cfg, lg); err != nil {
			return err
		}
		return obsFlags.Close(out)
	}
	if err := serve(out, cfg, *addr); err != nil {
		return err
	}
	return obsFlags.Close(out)
}

// serve runs the daemon until SIGINT/SIGTERM or POST /admin/drain, then
// drains the shard pool and shuts the listener down.
func serve(out io.Writer, cfg server.Config, addr string) error {
	s := server.New(cfg)
	drained := make(chan struct{}, 1)
	hs := &http.Server{Handler: server.Handler(s, func() {
		select {
		case drained <- struct{}{}:
		default:
		}
	})}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(out, "simsymd: listening on %s (%d shards, queue %d, batch %d)\n",
		ln.Addr(), cfg.Shards, cfg.QueueDepth, cfg.BatchSize)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case v := <-sig:
		fmt.Fprintf(out, "simsymd: %v, draining\n", v)
	case <-drained:
		fmt.Fprintln(out, "simsymd: drained via admin API, shutting down")
	case err := <-serveErr:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil { // idempotent if /admin/drain already ran
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-serveErr
	fmt.Fprintf(out, "simsymd: drained, %d sessions retained\n", s.Sessions())
	return nil
}

type loadgenConfig struct {
	Target      string
	Clients     int
	Workers     int
	ClientSteps int
	Duration    time.Duration
	Topology    string
	Kind        string
	BenchOut    string
}

// benchResult is the loadgen report, serialized to stdout and -bench-out.
type benchResult struct {
	Clients        int     `json:"clients"`
	Workers        int     `json:"workers"`
	ClientSteps    int     `json:"client_steps"`
	Topology       string  `json:"topology"`
	Kind           string  `json:"kind"`
	Shards         int     `json:"shards"`
	ElapsedSec     float64 `json:"elapsed_sec"`
	Sessions       int64   `json:"sessions"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	Steps          int64   `json:"steps"`
	StepsPerSec    float64 `json:"steps_per_sec"`
	Retries429     int64   `json:"retries_429"`
	CreateP50Ms    float64 `json:"create_p50_ms"`
	CreateP99Ms    float64 `json:"create_p99_ms"`
	StepP50Ms      float64 `json:"step_p50_ms"`
	StepP99Ms      float64 `json:"step_p99_ms"`
}

// runLoadgen drives lg.Clients simulated clients through a worker pool.
// Each client creates one session, steps it lg.ClientSteps times one
// slot at a time, and deletes it; 429 responses back off and retry so
// backpressure slows the generator instead of failing it.
func runLoadgen(out io.Writer, cfg server.Config, lg loadgenConfig) error {
	base := lg.Target
	var srv *server.Server
	if base == "" {
		srv = server.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: server.Handler(srv, nil)}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
			_ = hs.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "loadgen: self-hosted daemon at %s\n", base)
	}

	tr := &http.Transport{
		MaxIdleConns:        2 * lg.Workers,
		MaxIdleConnsPerHost: 2 * lg.Workers,
	}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	defer tr.CloseIdleConnections()

	body, err := json.Marshal(server.SessionConfig{Topology: "gen " + lg.Topology, Kind: lg.Kind})
	if err != nil {
		return err
	}

	var (
		next     atomic.Int64
		sessions atomic.Int64
		steps    atomic.Int64
		retries  atomic.Int64
	)
	var deadline time.Time
	if lg.Duration > 0 {
		deadline = time.Now().Add(lg.Duration)
	}
	createNs := make([][]int64, lg.Workers)
	stepNs := make([][]int64, lg.Workers)
	errc := make(chan error, lg.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < lg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(lg.Clients) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				if err := oneClient(client, base, body, lg.ClientSteps,
					&createNs[w], &stepNs[w], &steps, &retries); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				sessions.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return fmt.Errorf("loadgen: %w", err)
	default:
	}

	res := benchResult{
		Clients:     lg.Clients,
		Workers:     lg.Workers,
		ClientSteps: lg.ClientSteps,
		Topology:    lg.Topology,
		Kind:        lg.Kind,
		Shards:      cfg.Shards,
		ElapsedSec:  elapsed.Seconds(),
		Sessions:    sessions.Load(),
		Steps:       steps.Load(),
		Retries429:  retries.Load(),
	}
	if res.ElapsedSec > 0 {
		res.SessionsPerSec = float64(res.Sessions) / res.ElapsedSec
		res.StepsPerSec = float64(res.Steps) / res.ElapsedSec
	}
	creates := merge(createNs)
	stepsAll := merge(stepNs)
	res.CreateP50Ms = quantileMs(creates, 0.50)
	res.CreateP99Ms = quantileMs(creates, 0.99)
	res.StepP50Ms = quantileMs(stepsAll, 0.50)
	res.StepP99Ms = quantileMs(stepsAll, 0.99)

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if lg.BenchOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(lg.BenchOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// oneClient runs one simulated client: create, step ×n, delete. 429s
// (backpressure or rate limit) sleep briefly and retry.
func oneClient(client *http.Client, base string, createBody []byte, nsteps int,
	createNs, stepNs *[]int64, steps, retries *atomic.Int64) error {
	var snap server.Snapshot
	t0 := time.Now()
	if err := doRetry(client, http.MethodPost, base+"/v1/sessions", createBody, &snap, retries); err != nil {
		return err
	}
	*createNs = append(*createNs, int64(time.Since(t0)))
	for i := 0; i < nsteps; i++ {
		t0 = time.Now()
		err := doRetry(client, http.MethodPost, base+"/v1/sessions/"+snap.ID+"/step", nil, &snap, retries)
		if err != nil {
			return err
		}
		*stepNs = append(*stepNs, int64(time.Since(t0)))
		steps.Add(1)
		if snap.Finished {
			break
		}
	}
	return doRetry(client, http.MethodDelete, base+"/v1/sessions/"+snap.ID, nil, nil, retries)
}

// doRetry issues one request, retrying 429 responses with a small
// backoff, and decodes the JSON reply into out when non-nil.
func doRetry(client *http.Client, method, url string, body []byte, out any, retries *atomic.Int64) error {
	backoff := time.Millisecond
	for {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			retries.Add(1)
			time.Sleep(backoff)
			if backoff < 64*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		if resp.StatusCode/100 != 2 {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, raw)
		}
		if out != nil {
			err = json.NewDecoder(resp.Body).Decode(out)
		} else {
			_, err = io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		return err
	}
}

func merge(parts [][]int64) []int64 {
	var all []int64
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// quantileMs reads quantile q from sorted nanosecond samples, in ms.
func quantileMs(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e6
}
