package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWithGenerator(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "fig2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"3 processors", "similarity labeling", "{p1,p2}", "uniquely labeled processors: [2]"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWithSpecFileAndDOT(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "sys.txt")
	dot := filepath.Join(dir, "out.dot")
	src := "names n\nvar v\nproc p n=v\nproc q n=v\n"
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-spec", spec, "-rule", "set", "-dot", dot}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph") {
		t.Error("DOT file missing graph")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing -spec/-gen should fail")
	}
	if err := run([]string{"-gen", "fig1", "-rule", "bogus"}, &out); err == nil {
		t.Error("bad rule should fail")
	}
	if err := run([]string{"-spec", "/nonexistent/x"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-gen", "nosuch"}, &out); err == nil {
		t.Error("bad generator should fail")
	}
}
