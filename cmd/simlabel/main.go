// Command simlabel computes the similarity labeling of a system and, for
// small systems, its automorphism orbits.
//
// Usage:
//
//	simlabel -gen 'ring 5'
//	simlabel -spec table.sys -rule set -dot out.dot
//
// The system comes from -spec (a sysdsl file, "-" for stdin) or -gen (a
// generator directive). -rule picks the environment rule: "q" (counting,
// instruction set Q) or "set" (instruction set S). -dot writes a Graphviz
// rendering.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"simsym/internal/autgrp"
	"simsym/internal/core"
	"simsym/internal/sysdsl"
	"simsym/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simlabel:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simlabel", flag.ContinueOnError)
	spec := fs.String("spec", "", "system description file (sysdsl format, - for stdin)")
	gen := fs.String("gen", "", "generator directive, e.g. 'ring 5' or 'dining 5'")
	rule := fs.String("rule", "q", "environment rule: q (counting) or set (S-style)")
	dotOut := fs.String("dot", "", "write Graphviz DOT to this file")
	orbits := fs.Bool("orbits", true, "also compute automorphism orbits")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := loadSystem(*spec, *gen)
	if err != nil {
		return err
	}
	var r core.Rule
	switch *rule {
	case "q":
		r = core.RuleQ
	case "set":
		r = core.RuleSetS
	default:
		return fmt.Errorf("unknown rule %q (want q or set)", *rule)
	}

	fmt.Fprintf(out, "system: %d processors, %d variables, names %v\n",
		sys.NumProcs(), sys.NumVars(), sys.Names)
	lab, err := core.Similarity(sys, r)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "similarity labeling (%s rule): %s\n", r, lab)
	fmt.Fprintf(out, "uniquely labeled processors: %v\n", lab.UniqueProcs())
	fmt.Fprintf(out, "every processor paired: %v\n", lab.EveryProcPaired())

	if *orbits {
		o, err := autgrp.Compute(sys, autgrp.Options{})
		if err != nil {
			fmt.Fprintf(out, "orbits: skipped (%v)\n", err)
		} else {
			fmt.Fprintf(out, "|Aut| = %d, processor orbits %v, variable orbits %v\n",
				o.GroupOrder, o.ProcClasses(), o.VarClasses())
			fmt.Fprintf(out, "orbits refine similarity (Theorem 10): %v\n", o.RefinesSimilarity(lab))
		}
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(sysdsl.DOT(sys, "system")), 0o644); err != nil {
			return fmt.Errorf("writing DOT: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", *dotOut)
	}
	return nil
}

func loadSystem(spec, gen string) (*system.System, error) {
	switch {
	case gen != "":
		return sysdsl.Parse("gen " + gen)
	case spec == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("reading stdin: %w", err)
		}
		return sysdsl.Parse(string(data))
	case spec != "":
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("reading spec: %w", err)
		}
		return sysdsl.Parse(string(data))
	default:
		return nil, fmt.Errorf("need -spec or -gen")
	}
}
