// Command simlabel computes the similarity labeling of a system and, for
// small systems, its automorphism orbits.
//
// Usage:
//
//	simlabel -gen 'ring 5'
//	simlabel -spec table.sys -rule set -dot out.dot
//	simlabel -gen 'ring 1000' -churn 5000 -seed 7
//
// The system comes from -spec (a sysdsl file, "-" for stdin) or -gen (a
// generator directive). -rule picks the environment rule: "q" (counting,
// instruction set Q) or "set" (instruction set S). -dot writes a Graphviz
// rendering.
//
// -churn N drives N seeded topology mutation events (join, leave, crash,
// restart, rewire) through the incremental relabeling engine instead of
// labeling once, reporting events/sec, a per-event latency histogram,
// and split/merge totals. -churn-min and -churn-max bound the population
// during churn; the three flags mirror the churn_* fields of the shared
// run-config vocabulary.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"simsym/internal/adversary"
	"simsym/internal/autgrp"
	"simsym/internal/core"
	"simsym/internal/runcfg"
	"simsym/internal/sysdsl"
	"simsym/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simlabel:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simlabel", flag.ContinueOnError)
	spec := fs.String("spec", "", "system description file (sysdsl format, - for stdin)")
	gen := fs.String("gen", "", "generator directive, e.g. 'ring 5' or 'dining 5'")
	rule := fs.String("rule", "q", "environment rule: q (counting) or set (S-style)")
	dotOut := fs.String("dot", "", "write Graphviz DOT to this file")
	orbits := fs.Bool("orbits", true, "also compute automorphism orbits")
	churn := fs.Int("churn", 0, "drive this many seeded topology mutation events through the incremental engine")
	churnMin := fs.Int("churn-min", 0, "population floor during churn (0 = generator default)")
	churnMax := fs.Int("churn-max", 0, "population ceiling during churn (0 = unbounded)")
	seed := fs.Int64("seed", 1, "churn stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := loadSystem(*spec, *gen)
	if err != nil {
		return err
	}
	var r core.Rule
	switch *rule {
	case "q":
		r = core.RuleQ
	case "set":
		r = core.RuleSetS
	default:
		return fmt.Errorf("unknown rule %q (want q or set)", *rule)
	}

	fmt.Fprintf(out, "system: %d processors, %d variables, names %v\n",
		sys.NumProcs(), sys.NumVars(), sys.Names)
	if *churn > 0 {
		// The flags are the CLI spelling of the shared churn vocabulary
		// (runcfg.Common), so a simlabel invocation and a daemon session
		// config describe the same run.
		cfg := runcfg.Common{ChurnEvents: *churn, ChurnMinProcs: *churnMin, ChurnMaxProcs: *churnMax}
		return runChurn(out, sys, r, cfg, *seed)
	}
	lab, err := core.Similarity(sys, r)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "similarity labeling (%s rule): %s\n", r, lab)
	fmt.Fprintf(out, "uniquely labeled processors: %v\n", lab.UniqueProcs())
	fmt.Fprintf(out, "every processor paired: %v\n", lab.EveryProcPaired())

	if *orbits {
		o, err := autgrp.Compute(sys, autgrp.Options{})
		if err != nil {
			fmt.Fprintf(out, "orbits: skipped (%v)\n", err)
		} else {
			fmt.Fprintf(out, "|Aut| = %d, processor orbits %v, variable orbits %v\n",
				o.GroupOrder, o.ProcClasses(), o.VarClasses())
			fmt.Fprintf(out, "orbits refine similarity (Theorem 10): %v\n", o.RefinesSimilarity(lab))
		}
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(sysdsl.DOT(sys, "system")), 0o644); err != nil {
			return fmt.Errorf("writing DOT: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", *dotOut)
	}
	return nil
}

// runChurn drives a seeded mutation stream through the dynamic engine
// and prints throughput, a per-event latency histogram, and the
// accumulated split/merge work profile.
func runChurn(out io.Writer, sys *system.System, r core.Rule, cfg runcfg.Common, seed int64) error {
	d, err := core.NewDynSystem(sys, r, core.Config{})
	if err != nil {
		return err
	}
	events := cfg.ChurnEvents
	ch := adversary.NewChurn(rand.New(rand.NewSource(seed)), d,
		adversary.ChurnOpts{MinProcs: cfg.ChurnMinProcs, MaxProcs: cfg.ChurnMaxProcs})
	lat := make([]time.Duration, 0, events)
	kinds := map[string]int{}
	start := time.Now()
	for ev := 0; ev < events; ev++ {
		t0 := time.Now()
		kind, _, err := ch.Step()
		if err != nil {
			return fmt.Errorf("churn event %d: %w", ev, err)
		}
		lat = append(lat, time.Since(t0))
		kinds[kind]++
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	fmt.Fprintf(out, "churn: %d events in %v (%.0f events/sec), seed %d\n",
		events, elapsed.Round(time.Millisecond), float64(events)/elapsed.Seconds(), seed)
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(out, "  %-8s %d\n", k, kinds[k])
	}
	fmt.Fprintf(out, "latency: p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50), pct(0.90), pct(0.99), lat[len(lat)-1])
	tot := d.TotalStats()
	fmt.Fprintf(out, "relabel work: %d splits, %d merges, %d slots relabeled, %d signature computes\n",
		tot.Splits, tot.Merges, tot.Relabeled, tot.SigComputes)
	fmt.Fprintf(out, "final: %d processors, %d variables, %d classes\n",
		d.NumProcs(), d.NumVars(), d.NumClasses())
	return nil
}

func loadSystem(spec, gen string) (*system.System, error) {
	switch {
	case gen != "":
		return sysdsl.Parse("gen " + gen)
	case spec == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("reading stdin: %w", err)
		}
		return sysdsl.Parse(string(data))
	case spec != "":
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("reading spec: %w", err)
		}
		return sysdsl.Parse(string(data))
	default:
		return nil, fmt.Errorf("need -spec or -gen")
	}
}
