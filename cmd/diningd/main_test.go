package main

import (
	"strings"
	"testing"
)

func TestFiveTableDeadlocks(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DEADLOCK") {
		t.Errorf("five-table should deadlock:\n%s", out.String())
	}
}

func TestFlippedSixWorks(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "6", "-flipped", "-meals", "2", "-rounds", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "round-robin meals: [2 2 2 2 2 2]") {
		t.Errorf("flipped table should feed everyone:\n%s", out.String())
	}
}

func TestFlippedFourChecked(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "4", "-flipped", "-check", "-max-states", "60000"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "exclusion holds") || !strings.Contains(got, "no deadlock found") {
		t.Errorf("model check output wrong:\n%s", got)
	}
}

func TestRandomized(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5", "-random", "-rounds", "500"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Lehmann-Rabin") {
		t.Errorf("randomized output wrong:\n%s", out.String())
	}
}

func TestBadTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5", "-flipped"}, &out); err == nil {
		t.Error("odd flipped table should fail")
	}
}

func TestFaultRunReplay(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "4", "-flipped", "-meals", "2",
		"-faults", "stall", "-seed", "3", "-replay"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"fault run (seed 3, faults stall)", "replay: byte-identical"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
