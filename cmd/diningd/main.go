// Command diningd demonstrates the paper's Dining Philosophers results:
// the deterministic DP deadlock on the Figure 4 table, the DP' solution
// on the Figure 5 flipped table, and the Lehmann–Rabin randomized
// fallback that works even at prime table sizes.
//
// Usage:
//
//	diningd -n 5                  # Figure 4: watch the deadlock
//	diningd -n 6 -flipped -check  # Figure 5: model-checked solution
//	diningd -n 5 -random          # Lehmann–Rabin randomized run
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"simsym/internal/adversary"
	"simsym/internal/dining"
	"simsym/internal/mc"
	"simsym/internal/obs"
	"simsym/internal/obsflag"
	"simsym/internal/randomized"
	"simsym/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "diningd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diningd", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of philosophers")
	flipped := fs.Bool("flipped", false, "use the Figure 5 alternating table")
	meals := fs.Int("meals", 3, "meals per philosopher")
	rounds := fs.Int("rounds", 500, "round-robin rounds to run")
	check := fs.Bool("check", false, "model-check exclusion and deadlock")
	maxStates := fs.Int("max-states", 100_000, "model-checker state budget")
	random := fs.Bool("random", false, "run the Lehmann-Rabin randomized algorithm instead")
	seed := fs.Int64("seed", 1, "random seed")
	faults := fs.String("faults", "", "comma-separated fault classes to inject: crash, stall, lockdrop")
	replay := fs.Bool("replay", false, "replay the fault-injected run's trace and verify it is byte-identical")
	obsFlags := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := obsFlags.Recorder()
	if err != nil {
		return err
	}

	if *random {
		rng := rand.New(rand.NewSource(*seed))
		res, err := randomized.LehmannRabin(rng, *n, *rounds*(*n)*4)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Lehmann-Rabin on %d philosophers, %d steps:\n", *n, res.Steps)
		for p, m := range res.Meals {
			fmt.Fprintf(out, "  philosopher %d ate %d times\n", p, m)
		}
		return obsFlags.Close(out)
	}

	var sys *system.System
	if *flipped {
		sys, err = system.DiningFlipped(*n)
	} else {
		sys, err = system.Dining(*n)
	}
	if err != nil {
		return err
	}
	prog, err := dining.Program("left", "right", *meals)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "table: %d philosophers (flipped=%v), program: lock left, lock right, eat\n", *n, *flipped)

	oneMeal, err := dining.Program("left", "right", 1)
	if err != nil {
		return err
	}
	round, deadlocked, err := dining.FindDeadlockRoundRobin(sys, oneMeal, 300)
	if err != nil {
		return err
	}
	if deadlocked {
		fmt.Fprintf(out, "round-robin: DEADLOCK after round %d (every philosopher holds one fork)\n", round)
	} else {
		got, err := dining.RunFair(sys, prog, *rounds)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "round-robin meals: %v\n", got)
	}

	if *faults != "" {
		if err := runFaulted(out, sys, *meals, *faults, *seed, *replay, rec); err != nil {
			return err
		}
	}

	if *check {
		rep, err := dining.CheckWith(sys, oneMeal, mc.Options{MaxStates: *maxStates, Obs: rec})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "model check over %d states (complete=%v):\n", rep.StatesExplored, rep.Complete)
		if rep.ExclusionViolated != nil {
			fmt.Fprintf(out, "  exclusion VIOLATED, schedule %v\n", rep.ExclusionViolated)
		} else {
			fmt.Fprintln(out, "  exclusion holds")
		}
		if rep.Deadlocked != nil {
			fmt.Fprintf(out, "  deadlock reachable, schedule %v\n", rep.Deadlocked)
		} else {
			fmt.Fprintln(out, "  no deadlock found")
		}
	}
	return obsFlags.Close(out)
}

// runFaulted drives the table through the adversary harness with seeded
// fault injection: crashes and stalls must never break exclusion (they
// only cost progress), while lock-drop attacks the locking assumption
// itself and may surface a replayable exclusion violation.
func runFaulted(out io.Writer, sys *system.System, meals int, faults string, seed int64, replay bool, rec *obs.Recorder) error {
	spec, err := adversary.ParseSpec(faults, seed)
	if err != nil {
		return err
	}
	h, err := adversary.NewDiningHarness(sys, meals,
		adversary.Shuffled(rand.New(rand.NewSource(seed)), sys.NumProcs()))
	if err != nil {
		return err
	}
	h.Faults = adversary.NewFaults(spec, sys.NumProcs(), sys.NumVars())
	h.MaxSlots = 20000
	h.Obs = rec
	res, err := h.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fault run (seed %d, faults %s): steps=%d slots=%d events=%d done=%v\n",
		seed, faults, res.Steps, res.Slots, len(res.FaultLog), res.Done)
	for _, e := range res.FaultLog {
		if e.Kind != adversary.KindStall {
			fmt.Fprintf(out, "  fault %v\n", e)
		}
	}
	if res.Violation != nil {
		fmt.Fprintf(out, "fault run: VIOLATION %s (slot %d, %d-slot trace recorded)\n",
			res.Violation.Reason, res.Violation.Slot, len(res.Schedule))
	} else {
		fmt.Fprintf(out, "fault run: exclusion held, meals %v\n", dining.Meals(res.Final))
	}
	if replay {
		rep, err := h.Replay(res)
		if err != nil {
			return err
		}
		if d := res.Diff(rep); d != "" {
			return fmt.Errorf("replay diverged: %s", d)
		}
		fmt.Fprintf(out, "replay: byte-identical (%d slots, %d fault events, fingerprint match)\n",
			rep.Slots, len(rep.FaultLog))
	}
	return nil
}
