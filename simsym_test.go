package simsym_test

import (
	"strings"
	"testing"

	"simsym"
)

func TestFacadeQuickstart(t *testing.T) {
	sys, err := simsym.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := simsym.SimilarityOpts(sys, simsym.RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	if lab.NumProcClasses() != 1 {
		t.Errorf("ring classes = %d, want 1", lab.NumProcClasses())
	}
	d, err := simsym.DecideOpts(sys, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	if d.Solvable {
		t.Error("anonymous ring should be unsolvable even in L")
	}
}

func TestFacadeSelectAndRun(t *testing.T) {
	sys := simsym.Fig2()
	prog, d, err := simsym.BuildSelectOpts(sys, simsym.InstrQ, simsym.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("decision: %s", d.Reason)
	}
	m, err := simsym.NewMachine(sys, simsym.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := simsym.RoundRobin(sys.NumProcs(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(rr); err != nil {
		t.Fatal(err)
	}
	if sel := m.SelectedProcs(); len(sel) != 1 {
		t.Errorf("selected = %v", sel)
	}
}

func TestFacadeSafetyCheck(t *testing.T) {
	sys := simsym.Fig1()
	prog, _, err := simsym.BuildSelectOpts(sys, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckOpts(sys, simsym.InstrL, prog, simsym.WithMaxStates(100_000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Error("Algorithm 4 on Fig1 should be safe")
	}
}

func TestFacadeOrbitsAndVersions(t *testing.T) {
	dp, err := simsym.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	o, err := simsym.ComputeOrbits(dp)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.ProcClasses()) != 1 {
		t.Error("philosophers should form one orbit")
	}
	versions, err := simsym.RelabelVersions(simsym.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) == 0 {
		t.Error("Fig1 should have relabel versions")
	}
}

func TestFacadeDSLAndDOT(t *testing.T) {
	sys, err := simsym.ParseSystem("gen dining 5")
	if err != nil {
		t.Fatal(err)
	}
	text := simsym.SerializeSystem(sys)
	back, err := simsym.ParseSystem(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumProcs() != 5 {
		t.Errorf("round trip procs = %d", back.NumProcs())
	}
	if !strings.Contains(simsym.ExportDOT(sys, "t"), "phil0") {
		t.Error("DOT missing node")
	}
}

func TestFacadeMimicAndMsgPass(t *testing.T) {
	free, err := simsym.MimicsNobody(simsym.Fig3())
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != 0 {
		t.Errorf("Fig3 safe deciders = %v, want none", free)
	}
	net := &simsym.MsgNetwork{
		ProcIDs: []string{"a", "b"},
		Init:    []string{"0", "0"},
		Out:     [][]int{{1}, {0}},
	}
	labels, err := simsym.MsgSimilarity(net, true)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] {
		t.Error("two-ring should be similar")
	}
}

func TestFacadeWitnessAndDining(t *testing.T) {
	sys := simsym.Fig1()
	lab, err := simsym.SimilarityOpts(sys, simsym.RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	b := simsym.NewProgram()
	b.Post("n", "init")
	b.Peek("n", "x")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := simsym.WitnessSimilarity(sys, simsym.InstrQ, prog, lab, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("similar processors should stay synced")
	}
	table, err := simsym.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	dprog, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckDiningOpts(table, dprog, simsym.WithMaxStates(100_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlocked != nil || rep.ExclusionViolated != nil {
		t.Errorf("flipped table should be correct: %+v", rep)
	}
	stats, err := simsym.ItaiRodehSweep(1, 5, 8, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Successes != 20 {
		t.Errorf("election successes = %d", stats.Successes)
	}
}

func TestFacadeFamily(t *testing.T) {
	base, err := simsym.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	a := base.Clone()
	a.ProcInit[0] = "M"
	b := base.Clone()
	b.ProcInit[0] = "M"
	b.ProcInit[1] = "M" // adjacent marks: no rotation survives
	fam, err := simsym.HomogeneousFamily([]*simsym.System{a, b})
	if err != nil {
		t.Fatal(err)
	}
	d, err := simsym.DecideFamily(fam)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("family should be solvable: %s", d.Reason)
	}
	prog, _, err := simsym.BuildSelectFamily(fam)
	if err != nil {
		t.Fatal(err)
	}
	m, err := simsym.NewMachine(a, simsym.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := simsym.RoundRobin(4, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(rr); err != nil {
		t.Fatal(err)
	}
	if sel := m.SelectedProcs(); len(sel) != 1 {
		t.Errorf("selected = %v", sel)
	}
}
