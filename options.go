package simsym

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"simsym/internal/adversary"
	"simsym/internal/core"
	"simsym/internal/dining"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/obs"
	"simsym/internal/runcfg"
	"simsym/internal/sched"
	"simsym/internal/selection"
)

// Observability surface, re-exported from the internal obs package.
type (
	// Recorder emits structured events to a sink and aggregates metrics;
	// create one with NewRecorder and pass it via WithObserver. All
	// methods are safe on a nil *Recorder.
	Recorder = obs.Recorder
	// EventSink receives emitted events; implementations must tolerate
	// concurrent Emit calls.
	EventSink = obs.Sink
	// ObsEvent is one structured event: a sequence number, a kind, and a
	// small typed payload. Events never carry wall-clock readings, so
	// equal runs produce byte-identical streams.
	ObsEvent = obs.Event
	// ObsKind enumerates event kinds (phase boundaries, refinement
	// rounds, state expansions, scheduler steps, faults, verdicts).
	ObsKind = obs.Kind
	// EventRing is a bounded in-memory sink retaining the newest events.
	EventRing = obs.Ring
	// JSONLSink streams events as JSON Lines.
	JSONLSink = obs.JSONL
	// Metrics is a registry of named counters and latency histograms,
	// renderable in Prometheus text exposition format via WriteText.
	Metrics = obs.Registry
)

// NewRecorder returns a Recorder emitting to sink (a no-op sink when
// nil) with a fresh metrics registry.
func NewRecorder(sink EventSink) *Recorder { return obs.New(sink) }

// NewEventRing returns an in-memory ring sink; capacity <= 0 selects a
// default.
func NewEventRing(capacity int) *EventRing { return obs.NewRing(capacity) }

// NewJSONLSink returns a sink writing one JSON object per event to w.
// Call Close (or Flush) before reading what was written.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONL(w) }

// MultiSink fans events out to several sinks.
func MultiSink(sinks ...EventSink) EventSink { return obs.Multi(sinks...) }

// ReadJSONL decodes an event stream written by a JSONLSink.
func ReadJSONL(r io.Reader) ([]ObsEvent, error) { return obs.ReadJSONL(r) }

// RunConfig is the serializable option set shared by the options-based
// entry points and the simsymd daemon's session API: budgets, workers,
// sharding and spill, seed, symmetry reduction, the statistical stopping
// rule, fault classes, and the schedule kind. Its JSON form is exactly
// the "config" object a simsymd session-create request carries, so
// daemon configs and Go options are one vocabulary. Apply a whole
// RunConfig at once with WithConfig, or set individual fields through
// the With* option constructors, which are thin aliases onto its fields.
type RunConfig = runcfg.Common

// ConfigDuration is RunConfig's duration type: a time.Duration that
// JSON-marshals as a Go duration string ("30s") and unmarshals from that
// form or bare nanoseconds.
type ConfigDuration = runcfg.Duration

// Options collects the cross-cutting knobs shared by the options-based
// entry points: the serializable RunConfig plus the two process-local
// knobs (context and observer) that cannot cross a daemon boundary.
// Build one implicitly by passing Option values; the zero value means:
// background context, no observer, engine-default budgets, sequential
// execution, seed 0, no symmetry reduction.
type Options struct {
	// RunConfig holds every serializable knob; see its field docs.
	RunConfig
	// Ctx cancels long explorations; cancellation degrades into a
	// partial result (Exhausted = "canceled"), never a panic.
	Ctx context.Context
	// Obs receives structured events and metrics; nil records nothing.
	Obs *Recorder
}

// Option mutates Options; see With*.
type Option func(*Options)

// WithConfig applies a whole RunConfig at once — the form a daemon
// config file or a simsymd session request deserializes into. Later
// options still override individual fields.
func WithConfig(cfg RunConfig) Option { return func(o *Options) { o.RunConfig = cfg } }

// WithContext cancels long-running work when ctx is done.
func WithContext(ctx context.Context) Option { return func(o *Options) { o.Ctx = ctx } }

// WithObserver attaches an event recorder; nil detaches.
func WithObserver(rec *Recorder) Option { return func(o *Options) { o.Obs = rec } }

// WithMaxStates bounds model-checker exploration.
func WithMaxStates(n int) Option { return func(o *Options) { o.MaxStates = n } }

// WithBudget bounds model-checker exploration by states, wall-clock
// time, and estimated memory at once; zero values mean "engine default"
// (states) or "unbounded" (time, memory).
func WithBudget(maxStates int, maxDuration time.Duration, maxMemBytes int64) Option {
	return func(o *Options) {
		o.MaxStates = maxStates
		o.MaxDuration = ConfigDuration(maxDuration)
		o.MaxMemBytes = maxMemBytes
	}
}

// WithWorkers parallelizes deterministic hot loops over n goroutines.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithShards splits the model checker's visited-state index into n
// hash-addressed shards (rounded up to a power of two, capped at 256)
// staged in parallel per BFS level; verdicts remain identical to the
// sequential engine.
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithSpill caps the model checker's in-memory key storage at hotBytes
// and spills colder key bytes to temp files under dir ("" uses the
// system temp directory). Exploration verdicts are unaffected; only
// residency changes.
func WithSpill(hotBytes int64, dir string) Option {
	return func(o *Options) {
		o.HotIndexBytes = hotBytes
		o.SpillDir = dir
	}
}

// WithSeed sets the seed for entry points that consume randomness.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithSymmetry toggles automorphism-quotient state deduplication in the
// model checker.
func WithSymmetry(on bool) Option { return func(o *Options) { o.Symmetry = on } }

// WithConfidence sets the statistical checkers' stopping rule: sample
// until the violation-probability estimate is within epsilon of the
// truth with confidence 1−delta. Zero values keep the engine defaults
// (0.01 and 0.05).
func WithConfidence(epsilon, delta float64) Option {
	return func(o *Options) {
		o.Epsilon = epsilon
		o.Delta = delta
	}
}

// WithSamples caps the number of statistical trials; a cap below the
// Okamoto bound yields a partial report with a wider interval.
func WithSamples(max int) Option { return func(o *Options) { o.MaxSamples = max } }

// WithDepth bounds each sampled run's scheduler slots.
func WithDepth(slots int) Option { return func(o *Options) { o.Depth = slots } }

// WithFaults enables seeded fault injection in sampled runs: classes is
// a comma-separated subset of "crash", "stall", "lockdrop" with the CLI
// flags' default rates.
func WithFaults(classes string) Option { return func(o *Options) { o.FaultClasses = classes } }

// WithScheduleKind picks the sampled schedule generator: "uniform" or
// "shuffled".
func WithScheduleKind(kind string) Option { return func(o *Options) { o.SchedKind = kind } }

func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// mcOptions maps the facade knobs onto the model checker's options.
func (o Options) mcOptions() mc.Options {
	return mc.Options{
		MaxStates:      o.MaxStates,
		MaxDuration:    o.MaxDuration.Std(),
		MaxMemBytes:    o.MaxMemBytes,
		Workers:        o.Workers,
		Shards:         o.Shards,
		HotIndexBytes:  o.HotIndexBytes,
		SpillDir:       o.SpillDir,
		SymmetryReduce: o.Symmetry,
		Obs:            o.Obs,
		Ctx:            o.Ctx,
		Partial:        true,
	}
}

// SimilarityOpts computes the similarity labeling Θ of sys under the
// given environment rule (Algorithm 1 / Theorem 5). Recognized options:
// WithObserver, WithWorkers.
func SimilarityOpts(sys *System, rule Rule, opts ...Option) (*Labeling, error) {
	if sys == nil {
		return nil, fmt.Errorf("%w: Similarity: nil system", ErrBadArgs)
	}
	o := buildOptions(opts)
	return core.SimilarityWith(sys, rule, core.Config{Workers: o.Workers, Obs: o.Obs})
}

// NewDynSystem builds a dynamic similarity engine seeded from sys under
// the given environment rule: the labeling is maintained incrementally
// as processors and variables are added, removed, crashed, and rewired
// through Apply and its convenience wrappers, and Similarity on
// Snapshot() is always the cross-checked oracle. Recognized options:
// WithObserver (relabel events and dyn.* counters).
func NewDynSystem(sys *System, rule Rule, opts ...Option) (*DynSystem, error) {
	if sys == nil {
		return nil, fmt.Errorf("%w: NewDynSystem: nil system", ErrBadArgs)
	}
	o := buildOptions(opts)
	return core.NewDynSystem(sys, rule, core.Config{Workers: o.Workers, Obs: o.Obs})
}

// NewChurn builds a seeded, replayable churn stream over d: each Step
// applies one join/leave/crash/restart/rewire event and reports the
// incremental relabel stats. The stream is a deterministic function of
// (seed, opts, d's population at construction).
func NewChurn(seed int64, d *DynSystem, copts ChurnOpts) (*Churn, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: NewChurn: nil dynamic system", ErrBadArgs)
	}
	return adversary.NewChurn(rand.New(rand.NewSource(seed)), d, copts), nil
}

// DecideOpts solves the selection problem's decision half for the given
// model (Theorems 1–3, 7–9 and the section 6 mimicry criterion).
// Recognized options: WithObserver, WithWorkers.
func DecideOpts(sys *System, instr InstrSet, sch ScheduleClass, opts ...Option) (*Decision, error) {
	if sys == nil {
		return nil, fmt.Errorf("%w: Decide: nil system", ErrBadArgs)
	}
	o := buildOptions(opts)
	return selection.DecideWith(sys, instr, sch, o.Obs)
}

// BuildSelectOpts produces a runnable selection program (the paper's
// SELECT / Algorithm 4) for a solvable system in Q, S, or L. Recognized
// options: WithObserver.
func BuildSelectOpts(sys *System, instr InstrSet, sch ScheduleClass, opts ...Option) (*Program, *Decision, error) {
	if sys == nil {
		return nil, nil, fmt.Errorf("%w: BuildSelect: nil system", ErrBadArgs)
	}
	o := buildOptions(opts)
	return selection.SelectWith(sys, instr, sch, o.Obs)
}

// CheckStats re-exports the model checker's engine statistics.
type CheckStats = mc.Stats

// CheckReport is the full outcome of CheckOpts: Safe reports that no
// violation was found, Complete that the whole reachable space was
// explored (making Safe a proof rather than bounded evidence).
type CheckReport struct {
	Safe     bool
	Complete bool
	// Exhausted names the budget that ended an incomplete run:
	// "states", "time", "memory", or "canceled".
	Exhausted      string
	StatesExplored int
	// Violation describes the breached invariant ("" when Safe) and
	// Schedule is a witness step sequence reaching it.
	Violation string
	Schedule  []int
	Stats     CheckStats
}

// CheckOpts model-checks a selection program over every schedule: no
// state with two selected processors (Uniqueness), no transition that
// unselects one (Stability). Budget exhaustion and context cancellation
// yield a partial report (Safe=true, Complete=false, Exhausted set), not
// an error. Recognized options: WithObserver, WithMaxStates, WithBudget,
// WithWorkers, WithSymmetry, WithContext.
func CheckOpts(sys *System, instr InstrSet, prog *Program, opts ...Option) (*CheckReport, error) {
	if sys == nil || prog == nil {
		return nil, fmt.Errorf("%w: Check: nil system or program", ErrBadArgs)
	}
	o := buildOptions(opts)
	if o.MaxStates < 0 {
		return nil, fmt.Errorf("%w: Check: MaxStates %d < 0", ErrBadArgs, o.MaxStates)
	}
	mo := o.mcOptions()
	mo.StatePreds = []mc.StatePredicate{mc.UniquenessPred}
	mo.TransPreds = []mc.TransitionPredicate{mc.StabilityPred}
	res, err := mc.Check(func() (*Machine, error) {
		return machine.New(sys, instr, prog)
	}, mo)
	if err != nil {
		return nil, err
	}
	rep := &CheckReport{
		Safe:           res.Violation == nil,
		Complete:       res.Complete,
		Exhausted:      res.Exhausted,
		StatesExplored: res.StatesExplored,
		Stats:          res.Stats,
	}
	if res.Violation != nil {
		rep.Violation = res.Violation.Reason
		rep.Schedule = append([]int(nil), res.Violation.Schedule...)
	}
	return rep, nil
}

// CheckDiningOpts model-checks a dining program for exclusion and
// deadlock with full engine control. Recognized options: WithObserver,
// WithMaxStates, WithBudget, WithWorkers, WithSymmetry, WithContext.
func CheckDiningOpts(sys *System, prog *Program, opts ...Option) (*DiningReport, error) {
	if sys == nil || prog == nil {
		return nil, fmt.Errorf("%w: CheckDining: nil system or program", ErrBadArgs)
	}
	o := buildOptions(opts)
	if o.MaxStates < 0 {
		return nil, fmt.Errorf("%w: CheckDining: MaxStates %d < 0", ErrBadArgs, o.MaxStates)
	}
	return dining.CheckWith(sys, prog, o.mcOptions())
}

// RunFair executes prog on a fresh machine under a seeded fair schedule
// (every processor once per round, order shuffled per round) for the
// given number of rounds, stopping early when all processors halt. It
// returns the final machine and the number of executed steps. Recognized
// options: WithSeed, WithObserver (the machine emits one scheduler-step
// event per executed step).
func RunFair(sys *System, instr InstrSet, prog *Program, rounds int, opts ...Option) (*Machine, int, error) {
	if sys == nil || prog == nil {
		return nil, 0, fmt.Errorf("%w: RunFair: nil system or program", ErrBadArgs)
	}
	if rounds < 1 {
		return nil, 0, fmt.Errorf("%w: RunFair: rounds %d < 1", ErrBadArgs, rounds)
	}
	o := buildOptions(opts)
	m, err := machine.New(sys, instr, prog)
	if err != nil {
		return nil, 0, err
	}
	m.Observe(o.Obs)
	schedule, err := sched.ShuffledRounds(rand.New(rand.NewSource(o.Seed)), sys.NumProcs(), rounds)
	if err != nil {
		return nil, 0, err
	}
	steps, err := m.Run(schedule)
	if err != nil {
		return nil, steps, err
	}
	return m, steps, nil
}
