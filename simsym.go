package simsym

import (
	"errors"
	"fmt"

	"simsym/internal/adversary"
	"simsym/internal/autgrp"
	"simsym/internal/core"
	"simsym/internal/csp"
	"simsym/internal/dining"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/mimic"
	"simsym/internal/msgpass"
	"simsym/internal/partition"
	"simsym/internal/randomized"
	"simsym/internal/sched"
	"simsym/internal/selection"
	"simsym/internal/sysdsl"
	"simsym/internal/system"
	"simsym/internal/trace"
)

// ErrBadArgs is wrapped by every facade function that rejects its
// arguments (non-positive sizes, nil systems or programs, out-of-range
// indices). Test with errors.Is(err, simsym.ErrBadArgs).
var ErrBadArgs = errors.New("simsym: invalid argument")

// Core model types.
type (
	// System is a bipartite network of processors and shared variables
	// with a naming function and initial states (paper section 2).
	System = system.System
	// Name is a processor-local variable name.
	Name = system.Name
	// InstrSet identifies an instruction set (S, L, Q, extended L).
	InstrSet = system.InstrSet
	// ScheduleClass identifies a schedule class.
	ScheduleClass = system.ScheduleClass
	// Permutation is a candidate (auto)morphism.
	Permutation = system.Permutation

	// Labeling is a (similarity) labeling of a system's nodes.
	Labeling = core.Labeling
	// Rule selects the environment rule for refinement.
	Rule = core.Rule

	// DynSystem is a mutable system whose similarity labeling is
	// maintained incrementally under churn: processors and variables
	// join, leave, crash, and rewire, and each event relabels only the
	// classes it invalidates. Build one with NewDynSystem.
	DynSystem = core.DynSystem
	// Mutation is one topology edit applied through DynSystem.Apply;
	// a batch of mutations is one churn event.
	Mutation = core.Mutation
	// MutOp selects a Mutation's operation (OpAddProc, OpCrash, ...).
	MutOp = core.MutOp
	// UpdateStats profiles one incremental relabel event: slots
	// touched, classes split and merged, settle rounds.
	UpdateStats = partition.UpdateStats
	// Churn is a seeded, replayable stream of topology mutation events
	// over a DynSystem. Build one with NewChurn.
	Churn = adversary.Churn
	// ChurnOpts weights a churn stream's event mix.
	ChurnOpts = adversary.ChurnOpts

	// Decision is a selection-problem verdict.
	Decision = selection.Decision

	// Machine executes programs over systems.
	Machine = machine.Machine
	// Program is an executable instruction list.
	Program = machine.Program
	// ProgramBuilder assembles programs.
	ProgramBuilder = machine.Builder
	// Sym is an interned local-variable slot index.
	Sym = machine.Sym
	// Regs is a slot-addressed view of a processor's local store, passed
	// to Compute and JumpIf closures.
	Regs = machine.Regs

	// Orbits holds automorphism orbits (graph-theoretic symmetry).
	Orbits = autgrp.Orbits

	// MsgNetwork is a directed message-passing processor graph.
	MsgNetwork = msgpass.Network

	// DiningReport is the outcome of a dining-philosophers check.
	DiningReport = dining.Report
)

// Instruction sets and schedule classes (paper section 2).
const (
	InstrS    = system.InstrS
	InstrL    = system.InstrL
	InstrQ    = system.InstrQ
	InstrExtL = system.InstrExtL

	SchedGeneral     = system.SchedGeneral
	SchedFair        = system.SchedFair
	SchedBoundedFair = system.SchedBoundedFair

	// RuleQ counts variable neighbors per label (instruction set Q);
	// RuleSetS records only label sets (instruction set S).
	RuleQ    = core.RuleQ
	RuleSetS = core.RuleSetS
)

// Topology mutation operations (DynSystem.Apply vocabulary).
const (
	OpAddProc     = core.OpAddProc
	OpAddVar      = core.OpAddVar
	OpRemoveProc  = core.OpRemoveProc
	OpRemoveVar   = core.OpRemoveVar
	OpRewire      = core.OpRewire
	OpCrash       = core.OpCrash
	OpRestart     = core.OpRestart
	OpSetProcInit = core.OpSetProcInit
	OpSetVarInit  = core.OpSetVarInit
)

// Example systems (no parameters to validate, re-exported directly).
var (
	// Fig1 builds the paper's Figure 1 (two processors, one variable).
	Fig1 = system.Fig1
	// Fig2 builds the paper's Figure 2 ("Complicated Alibis").
	Fig2 = system.Fig2
	// Fig3 builds the reconstruction of Figure 3 (fair-S mimicry).
	Fig3 = system.Fig3
)

// Ring builds an anonymous ring of n processors.
func Ring(n int) (*System, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: Ring(n=%d) needs n >= 1", ErrBadArgs, n)
	}
	return system.Ring(n)
}

// Tree builds a rooted binary tree of n processors: each owns a
// variable (name "own") and shares its parent's variable (name "up").
func Tree(n int) (*System, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: Tree(n=%d) needs n >= 1", ErrBadArgs, n)
	}
	return system.Tree(n)
}

// Dining builds the Figure 4 dining table for n philosophers.
func Dining(n int) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: Dining(n=%d) needs n >= 2", ErrBadArgs, n)
	}
	return system.Dining(n)
}

// DiningFlipped builds the Figure 5 alternating table (n even).
func DiningFlipped(n int) (*System, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("%w: DiningFlipped(n=%d) needs even n >= 4", ErrBadArgs, n)
	}
	return system.DiningFlipped(n)
}

// Star builds n processors sharing one hub variable.
func Star(n int) (*System, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: Star(n=%d) needs n >= 1", ErrBadArgs, n)
	}
	return system.Star(n)
}

// NewMachine initializes a VM for sys under an instruction set.
func NewMachine(sys *System, instr InstrSet, prog *Program) (*Machine, error) {
	if sys == nil || prog == nil {
		return nil, fmt.Errorf("%w: NewMachine: nil system or program", ErrBadArgs)
	}
	return machine.New(sys, instr, prog)
}

// NewProgram returns an empty program builder.
func NewProgram() *ProgramBuilder { return machine.NewBuilder() }

// ComputeOrbits enumerates the automorphism group and node orbits
// (graph-theoretic symmetry, Theorems 10–11).
func ComputeOrbits(sys *System) (*Orbits, error) {
	if sys == nil {
		return nil, fmt.Errorf("%w: ComputeOrbits: nil system", ErrBadArgs)
	}
	return autgrp.Compute(sys, autgrp.Options{})
}

// MimicsNobody returns the processors that mimic no other processor in a
// fair system in S — the safe self-selectors (section 6).
func MimicsNobody(sys *System) ([]int, error) {
	if sys == nil {
		return nil, fmt.Errorf("%w: MimicsNobody: nil system", ErrBadArgs)
	}
	rel, err := mimic.Compute(sys)
	if err != nil {
		return nil, err
	}
	return rel.MimicsNobody(), nil
}

// HomogeneousFamily groups systems sharing one topology, differing only
// in initial states (section 5).
func HomogeneousFamily(members []*System) (*family.Family, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: HomogeneousFamily: no members", ErrBadArgs)
	}
	return family.NewHomogeneous(members)
}

// DecideFamily solves the selection problem for a homogeneous family in
// Q (Theorem 7): solvable iff an ELITE label set covers each member
// exactly once.
func DecideFamily(fam *family.Family) (*selection.FamilyDecision, error) {
	if fam == nil {
		return nil, fmt.Errorf("%w: DecideFamily: nil family", ErrBadArgs)
	}
	return selection.DecideFamilyQ(fam)
}

// BuildSelectFamily generates the uniform Algorithm 3 program electing
// the ELITE holder on every member of a solvable family.
func BuildSelectFamily(fam *family.Family) (*Program, *selection.FamilyDecision, error) {
	if fam == nil {
		return nil, nil, fmt.Errorf("%w: BuildSelectFamily: nil family", ErrBadArgs)
	}
	return selection.SelectFamilyQ(fam)
}

// RelabelVersions enumerates the paper's VERSIONS for a system in L: the
// similarity labelings (shared label space) of every relabel outcome.
func RelabelVersions(sys *System) ([][]int, error) {
	if sys == nil {
		return nil, fmt.Errorf("%w: RelabelVersions: nil system", ErrBadArgs)
	}
	versions, err := family.Versions(sys, family.RelabelOptions{})
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(versions))
	for i, v := range versions {
		out[i] = append([]int(nil), v.ProcLabels...)
	}
	return out, nil
}

// RoundRobin returns the canonical fair schedule prefix.
func RoundRobin(n, rounds int) ([]int, error) {
	if n < 1 || rounds < 0 {
		return nil, fmt.Errorf("%w: RoundRobin(n=%d, rounds=%d) needs n >= 1, rounds >= 0", ErrBadArgs, n, rounds)
	}
	return sched.RoundRobin(n, rounds)
}

// WitnessSimilarity runs prog under the class-sorted round-robin schedule
// and checks that same-labeled nodes stay in the same state at every
// round boundary (the Theorem 4 witness). It returns true when no
// divergence was observed.
func WitnessSimilarity(sys *System, instr InstrSet, prog *Program, lab *Labeling, rounds int) (bool, error) {
	if sys == nil || prog == nil || lab == nil {
		return false, fmt.Errorf("%w: WitnessSimilarity: nil system, program, or labeling", ErrBadArgs)
	}
	if rounds < 1 {
		return false, fmt.Errorf("%w: WitnessSimilarity: rounds %d < 1", ErrBadArgs, rounds)
	}
	rep, err := trace.Witness(sys, instr, prog, lab, rounds)
	if err != nil {
		return false, err
	}
	return rep.Synced(), nil
}

// DiningProgram returns the uniform fork-grabbing philosopher program.
func DiningProgram(first, second Name, meals int) (*Program, error) {
	if first == "" || second == "" || meals < 1 {
		return nil, fmt.Errorf("%w: DiningProgram(%q, %q, meals=%d) needs non-empty names, meals >= 1", ErrBadArgs, first, second, meals)
	}
	return dining.Program(first, second, meals)
}

// OrientedDiningTable builds the Chandy–Misra table: the acyclic fork
// orientation lives in the initial state (section 8's encapsulated
// asymmetry).
func OrientedDiningTable(n int, towardRight []bool) (*System, error) {
	if n < 2 || len(towardRight) != n {
		return nil, fmt.Errorf("%w: OrientedDiningTable(n=%d, len(towardRight)=%d) needs n >= 2 and one orientation per fork", ErrBadArgs, n, len(towardRight))
	}
	return dining.OrientedTable(n, towardRight)
}

// ChandyMisraProgram returns the uniform dirty-fork philosopher program.
func ChandyMisraProgram(meals int) (*Program, error) {
	if meals < 1 {
		return nil, fmt.Errorf("%w: ChandyMisraProgram(meals=%d) needs meals >= 1", ErrBadArgs, meals)
	}
	return dining.ChandyMisraProgram(meals)
}

// ItaiRodehSweep runs the randomized anonymous-ring election repeatedly.
func ItaiRodehSweep(seed int64, n, idSpace, maxPhases, runs int) (*randomized.ElectionStats, error) {
	if n < 1 || idSpace < 1 || maxPhases < 1 || runs < 1 {
		return nil, fmt.Errorf("%w: ItaiRodehSweep(n=%d, idSpace=%d, maxPhases=%d, runs=%d) needs all >= 1", ErrBadArgs, n, idSpace, maxPhases, runs)
	}
	return randomized.ElectionSweep(seed, n, idSpace, maxPhases, runs)
}

// ParseSystem reads the sysdsl text format (or a generator directive).
func ParseSystem(src string) (*System, error) { return sysdsl.Parse(src) }

// SerializeSystem renders a system in the sysdsl text format.
func SerializeSystem(sys *System) string { return sysdsl.Serialize(sys) }

// ExportDOT renders the network in Graphviz DOT format.
func ExportDOT(sys *System, title string) string { return sysdsl.DOT(sys, title) }

// MsgSimilarity computes the similarity labeling of a message-passing
// network (section 6): counting environments for the Q-like regime, set
// environments for the overwrite regime.
func MsgSimilarity(n *MsgNetwork, counting bool) ([]int, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: MsgSimilarity: nil network", ErrBadArgs)
	}
	return msgpass.Similarity(n, counting)
}

// CSPNet is a synchronous (CSP) process network of two-endpoint channels.
type CSPNet = csp.Net

// CSPRing builds the CSP ring network.
func CSPRing(n int) (*CSPNet, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: CSPRing(n=%d) needs n >= 1", ErrBadArgs, n)
	}
	return csp.RingNet(n)
}

// DecideExtendedCSP solves the selection problem under CSP extended with
// output guards, via the channel-shaped L translation (section 6).
func DecideExtendedCSP(n *CSPNet) (*Decision, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: DecideExtendedCSP: nil network", ErrBadArgs)
	}
	return csp.DecideExtended(n)
}
