// Package simsym is a library companion to Johnson & Schneider,
// "Symmetry and Similarity in Distributed Systems" (PODC 1985).
//
// It models anonymous concurrent systems — processors connected to shared
// variables through local names — and implements the paper's theory end
// to end: similarity labelings (Algorithm 1) under the S, L, and Q
// instruction sets; the distributed label-learning programs (Algorithms 2
// and 3); the selection problem's decision procedures and the SELECT /
// Algorithm 4 constructions; graph-theoretic symmetry and Theorems 10–11;
// the Dining Philosophers results DP and DP'; message-passing and CSP
// transfers; and the randomized symmetry breakers of section 8. A small
// VM executes the generated programs one atomic step at a time, and an
// explicit-state model checker verifies Uniqueness, Stability, exclusion,
// and deadlock-freedom over every schedule.
//
// This package is the public facade: it re-exports the stable surface of
// the internal packages so downstream users never import simsym/internal.
//
// Quick start:
//
//	sys, _ := simsym.Ring(5)
//	lab, _ := simsym.Similarity(sys, simsym.RuleQ)
//	fmt.Println(lab)                       // one class: all similar
//	d, _ := simsym.Decide(sys, simsym.InstrL, simsym.SchedFair)
//	fmt.Println(d.Solvable, d.Reason)      // false: rings stay anonymous
package simsym

import (
	"errors"

	"simsym/internal/autgrp"
	"simsym/internal/core"
	"simsym/internal/csp"
	"simsym/internal/dining"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/mimic"
	"simsym/internal/msgpass"
	"simsym/internal/randomized"
	"simsym/internal/sched"
	"simsym/internal/selection"
	"simsym/internal/sysdsl"
	"simsym/internal/system"
	"simsym/internal/trace"
)

// Core model types.
type (
	// System is a bipartite network of processors and shared variables
	// with a naming function and initial states (paper section 2).
	System = system.System
	// Name is a processor-local variable name.
	Name = system.Name
	// InstrSet identifies an instruction set (S, L, Q, extended L).
	InstrSet = system.InstrSet
	// ScheduleClass identifies a schedule class.
	ScheduleClass = system.ScheduleClass
	// Permutation is a candidate (auto)morphism.
	Permutation = system.Permutation

	// Labeling is a (similarity) labeling of a system's nodes.
	Labeling = core.Labeling
	// Rule selects the environment rule for refinement.
	Rule = core.Rule

	// Decision is a selection-problem verdict.
	Decision = selection.Decision

	// Machine executes programs over systems.
	Machine = machine.Machine
	// Program is an executable instruction list.
	Program = machine.Program
	// ProgramBuilder assembles programs.
	ProgramBuilder = machine.Builder
	// Locals is a processor's local store.
	Locals = machine.Locals

	// Orbits holds automorphism orbits (graph-theoretic symmetry).
	Orbits = autgrp.Orbits

	// MsgNetwork is a directed message-passing processor graph.
	MsgNetwork = msgpass.Network
)

// Instruction sets and schedule classes (paper section 2).
const (
	InstrS    = system.InstrS
	InstrL    = system.InstrL
	InstrQ    = system.InstrQ
	InstrExtL = system.InstrExtL

	SchedGeneral     = system.SchedGeneral
	SchedFair        = system.SchedFair
	SchedBoundedFair = system.SchedBoundedFair

	// RuleQ counts variable neighbors per label (instruction set Q);
	// RuleSetS records only label sets (instruction set S).
	RuleQ    = core.RuleQ
	RuleSetS = core.RuleSetS
)

// Example systems and builders.
var (
	// Fig1 builds the paper's Figure 1 (two processors, one variable).
	Fig1 = system.Fig1
	// Fig2 builds the paper's Figure 2 ("Complicated Alibis").
	Fig2 = system.Fig2
	// Fig3 builds the reconstruction of Figure 3 (fair-S mimicry).
	Fig3 = system.Fig3
	// Ring builds an anonymous ring of n processors.
	Ring = system.Ring
	// Dining builds the Figure 4 dining table for n philosophers.
	Dining = system.Dining
	// DiningFlipped builds the Figure 5 alternating table (n even).
	DiningFlipped = system.DiningFlipped
	// Star builds n processors sharing one hub variable.
	Star = system.Star
)

// Similarity computes the similarity labeling Θ of sys under the given
// environment rule (Algorithm 1 / Theorem 5).
func Similarity(sys *System, rule Rule) (*Labeling, error) {
	return core.Similarity(sys, rule)
}

// Decide solves the selection problem's decision half for the given
// model (Theorems 1–3, 7–9 and the section 6 mimicry criterion).
func Decide(sys *System, instr InstrSet, sch ScheduleClass) (*Decision, error) {
	return selection.Decide(sys, instr, sch)
}

// BuildSelect produces a runnable selection program (the paper's SELECT /
// Algorithm 4) for a solvable system in Q or L.
func BuildSelect(sys *System, instr InstrSet, sch ScheduleClass) (*Program, *Decision, error) {
	return selection.Select(sys, instr, sch)
}

// NewMachine initializes a VM for sys under an instruction set.
func NewMachine(sys *System, instr InstrSet, prog *Program) (*Machine, error) {
	return machine.New(sys, instr, prog)
}

// NewProgram returns an empty program builder.
func NewProgram() *ProgramBuilder { return machine.NewBuilder() }

// ComputeOrbits enumerates the automorphism group and node orbits
// (graph-theoretic symmetry, Theorems 10–11).
func ComputeOrbits(sys *System) (*Orbits, error) {
	return autgrp.Compute(sys, autgrp.Options{})
}

// MimicsNobody returns the processors that mimic no other processor in a
// fair system in S — the safe self-selectors (section 6).
func MimicsNobody(sys *System) ([]int, error) {
	rel, err := mimic.Compute(sys)
	if err != nil {
		return nil, err
	}
	return rel.MimicsNobody(), nil
}

// HomogeneousFamily groups systems sharing one topology, differing only
// in initial states (section 5).
func HomogeneousFamily(members []*System) (*family.Family, error) {
	return family.NewHomogeneous(members)
}

// DecideFamily solves the selection problem for a homogeneous family in
// Q (Theorem 7): solvable iff an ELITE label set covers each member
// exactly once.
func DecideFamily(fam *family.Family) (*selection.FamilyDecision, error) {
	return selection.DecideFamilyQ(fam)
}

// BuildSelectFamily generates the uniform Algorithm 3 program electing
// the ELITE holder on every member of a solvable family.
func BuildSelectFamily(fam *family.Family) (*Program, *selection.FamilyDecision, error) {
	return selection.SelectFamilyQ(fam)
}

// RelabelVersions enumerates the paper's VERSIONS for a system in L: the
// similarity labelings (shared label space) of every relabel outcome.
func RelabelVersions(sys *System) ([][]int, error) {
	versions, err := family.Versions(sys, family.RelabelOptions{})
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(versions))
	for i, v := range versions {
		out[i] = append([]int(nil), v.ProcLabels...)
	}
	return out, nil
}

// RoundRobin returns the canonical fair schedule prefix.
func RoundRobin(n, rounds int) ([]int, error) { return sched.RoundRobin(n, rounds) }

// WitnessSimilarity runs prog under the class-sorted round-robin schedule
// and checks that same-labeled nodes stay in the same state at every
// round boundary (the Theorem 4 witness). It returns true when no
// divergence was observed.
func WitnessSimilarity(sys *System, instr InstrSet, prog *Program, lab *Labeling, rounds int) (bool, error) {
	rep, err := trace.Witness(sys, instr, prog, lab, rounds)
	if err != nil {
		return false, err
	}
	return rep.Synced(), nil
}

// CheckSelectionSafety model-checks a selection program over every
// schedule: no state with two selected processors, no transition that
// unselects one. safe && complete is a proof over the full reachable
// space; safe && !complete means no violation was found within the
// maxStates budget (bounded verification).
func CheckSelectionSafety(sys *System, instr InstrSet, prog *Program, maxStates int) (safe, complete bool, err error) {
	res, err := mc.Check(func() (*Machine, error) {
		return machine.New(sys, instr, prog)
	}, mc.Options{
		MaxStates:  maxStates,
		StatePreds: []mc.StatePredicate{mc.UniquenessPred},
		TransPreds: []mc.TransitionPredicate{mc.StabilityPred},
	})
	if errors.Is(err, mc.ErrBudget) {
		return true, false, nil
	}
	if err != nil {
		return false, false, err
	}
	return res.Violation == nil, res.Complete, nil
}

// DiningProgram returns the uniform fork-grabbing philosopher program.
func DiningProgram(first, second Name, meals int) (*Program, error) {
	return dining.Program(first, second, meals)
}

// CheckDining model-checks a dining program for exclusion and deadlock.
func CheckDining(sys *System, prog *Program, maxStates int) (*dining.Report, error) {
	return dining.Check(sys, prog, maxStates)
}

// OrientedDiningTable builds the Chandy–Misra table: the acyclic fork
// orientation lives in the initial state (section 8's encapsulated
// asymmetry).
func OrientedDiningTable(n int, towardRight []bool) (*System, error) {
	return dining.OrientedTable(n, towardRight)
}

// ChandyMisraProgram returns the uniform dirty-fork philosopher program.
func ChandyMisraProgram(meals int) (*Program, error) {
	return dining.ChandyMisraProgram(meals)
}

// ItaiRodehSweep runs the randomized anonymous-ring election repeatedly.
func ItaiRodehSweep(seed int64, n, idSpace, maxPhases, runs int) (*randomized.ElectionStats, error) {
	return randomized.ElectionSweep(seed, n, idSpace, maxPhases, runs)
}

// ParseSystem reads the sysdsl text format (or a generator directive).
func ParseSystem(src string) (*System, error) { return sysdsl.Parse(src) }

// SerializeSystem renders a system in the sysdsl text format.
func SerializeSystem(sys *System) string { return sysdsl.Serialize(sys) }

// ExportDOT renders the network in Graphviz DOT format.
func ExportDOT(sys *System, title string) string { return sysdsl.DOT(sys, title) }

// MsgSimilarity computes the similarity labeling of a message-passing
// network (section 6): counting environments for the Q-like regime, set
// environments for the overwrite regime.
func MsgSimilarity(n *MsgNetwork, counting bool) ([]int, error) {
	return msgpass.Similarity(n, counting)
}

// CSPNet is a synchronous (CSP) process network of two-endpoint channels.
type CSPNet = csp.Net

// CSPRing builds the CSP ring network.
func CSPRing(n int) (*CSPNet, error) { return csp.RingNet(n) }

// DecideExtendedCSP solves the selection problem under CSP extended with
// output guards, via the channel-shaped L translation (section 6).
func DecideExtendedCSP(n *CSPNet) (*Decision, error) { return csp.DecideExtended(n) }
