package simsym_test

import (
	"fmt"

	"simsym"
)

// The options-based API threads an observer through a whole decision:
// the event stream shows the phases and refinement work, the metrics
// registry aggregates counters. The positional Decide is the same call
// without options.
func ExampleDecideOpts() {
	sys, _ := simsym.Ring(6)
	sys.ProcInit[0] = "leader" // break the symmetry

	ring := simsym.NewEventRing(0)
	rec := simsym.NewRecorder(ring)
	d, err := simsym.DecideOpts(sys, simsym.InstrQ, simsym.SchedFair,
		simsym.WithObserver(rec))
	if err != nil {
		panic(err)
	}
	fmt.Println("solvable:", d.Solvable)

	kinds := ring.CountByKind()
	fmt.Println("distinct event kinds:", len(kinds) >= 5)
	fmt.Println("refine rounds counted:",
		rec.Metrics().Counter("core.refine_rounds").Value() > 0)
	// Output:
	// solvable: true
	// distinct event kinds: true
	// refine rounds counted: true
}

// CheckOpts is the one safety-check entry point: budgets, symmetry
// reduction, and parallelism ride in through options, and the report
// carries the witness schedule and engine statistics.
func ExampleCheckOpts() {
	sys := simsym.Fig1()
	prog, _, err := simsym.BuildSelectOpts(sys, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		panic(err)
	}
	rep, err := simsym.CheckOpts(sys, simsym.InstrL, prog,
		simsym.WithMaxStates(50_000))
	if err != nil {
		panic(err)
	}
	fmt.Println("safe:", rep.Safe)
	fmt.Println("exhausted:", rep.Exhausted) // bounded evidence, not proof
	fmt.Println("states:", rep.StatesExplored)
	// Output:
	// safe: true
	// exhausted: states
	// states: 50000
}
