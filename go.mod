module simsym

go 1.22
