// Root benchmarks: one per experiment of EXPERIMENTS.md (the paper's
// evaluation artifacts E1–E15), plus the DESIGN.md ablations. Run with
//
//	go test -bench=. -benchmem
package simsym_test

import (
	"fmt"
	"runtime"
	"testing"

	"simsym"
	"simsym/internal/core"
	"simsym/internal/experiments"
	"simsym/internal/system"
)

func benchTable(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp1Fig1 regenerates E1: Figure 1's similarity classes, the
// random-program round-robin witness, and the per-model verdicts.
func BenchmarkExp1Fig1(b *testing.B) { benchTable(b, experiments.E1Fig1) }

// BenchmarkExp2Alibi regenerates E2: Algorithm 2 convergence on Figure 2.
func BenchmarkExp2Alibi(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.E2Alibi(3) })
}

// BenchmarkExp3Mimic regenerates E3: the Figure 3 mimicry analysis.
func BenchmarkExp3Mimic(b *testing.B) { benchTable(b, experiments.E3Mimic) }

// BenchmarkExp4DP5 regenerates E4: orbits, Theorem 11, and the DP
// deadlock on the five-philosopher table.
func BenchmarkExp4DP5(b *testing.B) { benchTable(b, experiments.E4DP5) }

// BenchmarkExp5DP6 regenerates E5: the DP' solution with a bounded model
// check.
func BenchmarkExp5DP6(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.E5DP6(20_000) })
}

// BenchmarkExp6Scaling regenerates E6's rows: per-size sub-benchmarks
// showing the Theorem 5 shape. The production driver (Hopcroft
// smaller-half) is near-linearithmic on marked rings; the dirty-class
// worklist and the naive Algorithm 1 transcription are the DESIGN.md
// ablations and blow up super-linearly, so they stop at smaller sizes.
func BenchmarkExp6Scaling(b *testing.B) {
	markedRing := func(b *testing.B, n int) *system.System {
		b.Helper()
		s, err := system.Ring(n)
		if err != nil {
			b.Fatal(err)
		}
		s.ProcInit[0] = "leader"
		return s
	}
	for _, n := range []int{64, 256, 1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("hopcroft/n=%d", n), func(b *testing.B) {
			s := markedRing(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Similarity(s, core.RuleQ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Opt-in parallel signature pass at the sizes where single-core
	// signature encoding dominates.
	for _, n := range []int{16384, 65536} {
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			s := markedRing(b, n)
			workers := runtime.GOMAXPROCS(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SimilarityParallel(s, core.RuleQ, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("worklist/n=%d", n), func(b *testing.B) {
			s := markedRing(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SimilarityWorklist(s, core.RuleQ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			s := markedRing(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SimilarityNaive(s, core.RuleQ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp7FLP regenerates E7: the Theorem 1 counterexample search.
func BenchmarkExp7FLP(b *testing.B) { benchTable(b, experiments.E7FLP) }

// BenchmarkExp8Hierarchy regenerates E8: the full witness/model matrix.
func BenchmarkExp8Hierarchy(b *testing.B) { benchTable(b, experiments.E8Hierarchy) }

// BenchmarkExp9Randomized regenerates E9: Itai–Rodeh sweeps plus the
// Lehmann–Rabin run and the deterministic deadlock baseline.
func BenchmarkExp9Randomized(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.E9Randomized(100) })
}

// BenchmarkExp10Orbits regenerates E10: symmetry vs similarity across
// prime and composite tables.
func BenchmarkExp10Orbits(b *testing.B) { benchTable(b, experiments.E10Orbits) }

// BenchmarkExp11EliteL regenerates E11: VERSIONS, ELITE, and Algorithm 4
// end-to-end runs.
func BenchmarkExp11EliteL(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.E11EliteL(2) })
}

// BenchmarkExp12MsgPass regenerates E12: the message-passing suite.
func BenchmarkExp12MsgPass(b *testing.B) { benchTable(b, experiments.E12MsgPass) }

// BenchmarkExp13Encapsulated regenerates E13: Chandy–Misra with the
// orientation encapsulated in the initial state.
func BenchmarkExp13Encapsulated(b *testing.B) { benchTable(b, experiments.E13Encapsulated) }

// BenchmarkExp14CSP regenerates E14: the extended-CSP translation.
func BenchmarkExp14CSP(b *testing.B) { benchTable(b, experiments.E14CSP) }

// BenchmarkExp15AlgorithmS regenerates E15: Algorithm 2-S convergence.
func BenchmarkExp15AlgorithmS(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.E15AlgorithmS(2) })
}

// BenchmarkExp16Statistical regenerates E16 at a loosened half-width
// (ε=0.2 → 47 trials per row) so one iteration stays sub-second.
func BenchmarkExp16Statistical(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.E16Statistical(0.2) })
}

// BenchmarkSelectQ measures the full SELECT pipeline (decide + compile +
// run) on a marked ring in Q.
func BenchmarkSelectQ(b *testing.B) {
	sys, err := simsym.Ring(6)
	if err != nil {
		b.Fatal(err)
	}
	sys.ProcInit[0] = "leader"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, _, err := simsym.BuildSelectOpts(sys, simsym.InstrQ, simsym.SchedFair)
		if err != nil {
			b.Fatal(err)
		}
		m, err := simsym.NewMachine(sys, simsym.InstrQ, prog)
		if err != nil {
			b.Fatal(err)
		}
		rr, err := simsym.RoundRobin(6, 3000)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(rr); err != nil {
			b.Fatal(err)
		}
		if len(m.SelectedProcs()) != 1 {
			b.Fatal("selection failed")
		}
	}
}

// BenchmarkSelectL measures Algorithm 4 (relabel + two-phase labeling +
// election) on Figure 1.
func BenchmarkSelectL(b *testing.B) {
	sys := simsym.Fig1()
	prog, _, err := simsym.BuildSelectOpts(sys, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := simsym.NewMachine(sys, simsym.InstrL, prog)
		if err != nil {
			b.Fatal(err)
		}
		rr, err := simsym.RoundRobin(2, 3000)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(rr); err != nil {
			b.Fatal(err)
		}
		if len(m.SelectedProcs()) != 1 {
			b.Fatal("selection failed")
		}
	}
}

// benchRingSplice drives b.N splice/unsplice event pairs through the
// incremental engine on an n-processor ring. Each iteration is two
// churn events, both locality-bounded: the certificate skips the merge
// pass and per-event work stays proportional to the splice's
// neighborhood, independent of n.
func benchRingSplice(b *testing.B, n int) {
	sys, err := system.Ring(n)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.NewDynSystem(sys, core.RuleQ, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := sys.ProcIDs[i%n]
		bind, err := d.Bindings(p)
		if err != nil {
			b.Fatal(err)
		}
		vb := bind[1]
		vx := fmt.Sprintf("xv%d", i)
		px := fmt.Sprintf("xp%d", i)
		if _, err := d.Apply(
			core.Mutation{Op: core.OpAddVar, Var: vx, Init: "0"},
			core.Mutation{Op: core.OpAddProc, Proc: px, Init: "0", Bind: []string{vx, vb}},
			core.Mutation{Op: core.OpRewire, Proc: p, Name: "right", Var: vx},
		); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Apply(
			core.Mutation{Op: core.OpRewire, Proc: p, Name: "right", Var: vb},
			core.Mutation{Op: core.OpRemoveProc, Proc: px},
		); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d.NumClasses() != 2 {
		b.Fatalf("ring symmetry lost: %d classes", d.NumClasses())
	}
}

// BenchmarkChurnSplice is the incremental half of the E17 comparison:
// ns/op is the cost of two shape-preserving churn events and should be
// flat in n.
func BenchmarkChurnSplice(b *testing.B) {
	for _, n := range []int{1024, 16384, 131072} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRingSplice(b, n) })
	}
}

// BenchmarkChurnRecompute is the static half of the comparison: the
// full Similarity fixpoint a non-incremental caller pays per topology
// event, growing linearly in n.
func BenchmarkChurnRecompute(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		sys, err := system.Ring(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Similarity(sys, core.RuleQ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
