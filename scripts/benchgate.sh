#!/usr/bin/env bash
# benchgate.sh — benchstat-style regression gate for the tentpole
# benchmarks, compared against the committed baseline in
# scripts/bench_baseline.txt.
#
# Two classes of check, with very different tolerances:
#   * allocs/op is host-independent and pinned tightly: at most
#     baseline*1.10+2, and BenchmarkFingerprint/warm must be exactly 0
#     (the arena's whole contract).
#   * ns/op varies wildly across CI hosts, so it only gates
#     order-of-magnitude regressions: fail at > baseline*4. Real
#     performance work is measured with interleaved same-host A/B runs
#     (see EXPERIMENTS.md), never by this gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/bench_baseline.txt
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

go test -run '^$' -bench 'BenchmarkFingerprint/warm' -benchtime 2000x ./internal/machine/ | tee -a "$OUT"
go test -run '^$' -bench 'BenchmarkCheckThroughput/seq' -benchtime 10x ./internal/mc/ | tee -a "$OUT"
go test -run '^$' -bench 'BenchmarkChurnSplice/n=1024$' -benchtime 2000x . | tee -a "$OUT"

awk -v baseline="$BASELINE" '
/ ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns[name] = $(i - 1)
        if ($i == "allocs/op") al[name] = $(i - 1)
    }
}
END {
    fails = 0
    while ((getline line < baseline) > 0) {
        if (line ~ /^#/ || line ~ /^[ \t]*$/) continue
        split(line, f, /[ \t]+/)
        bname = f[1]; bns = f[2] + 0; bal = f[3] + 0
        if (!(bname in ns)) {
            printf "FAIL %s: benchmark did not run\n", bname
            fails++
            continue
        }
        if (al[bname] + 0 > bal * 1.10 + 2) {
            printf "FAIL %s: %s allocs/op, baseline %d (max %.0f)\n", bname, al[bname], bal, bal * 1.10 + 2
            fails++
        }
        if (bal == 0 && al[bname] + 0 != 0) {
            printf "FAIL %s: %s allocs/op, must be exactly 0\n", bname, al[bname]
            fails++
        }
        if (ns[bname] + 0 > bns * 4) {
            printf "FAIL %s: %.0f ns/op, baseline %.0f (max %.0f)\n", bname, ns[bname], bns, bns * 4
            fails++
        }
        printf "ok   %s: %.0f ns/op (baseline %.0f), %s allocs/op (baseline %d)\n", bname, ns[bname], bns, al[bname], bal
    }
    if (fails > 0) {
        printf "%d bench gate failure(s)\n", fails
        exit 1
    }
}
' "$OUT"
