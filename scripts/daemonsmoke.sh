#!/bin/sh
# daemonsmoke.sh — end-to-end smoke test of the simsymd daemon.
#
# Starts simsymd on an ephemeral port, runs a short loadgen burst
# against it, scrapes /metrics for the server counters, then drains via
# the admin API and asserts the daemon exits 0. Exercises the full
# production path: real TCP, real signals-free shutdown, metrics on.
#
#	./scripts/daemonsmoke.sh [duration]   # default 5s
set -eu
cd "$(dirname "$0")/.."
duration="${1:-5s}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/simsymd" ./cmd/simsymd

"$workdir/simsymd" -addr 127.0.0.1:0 >"$workdir/daemon.log" 2>&1 &
daemon=$!
# The daemon prints "listening on <addr>" once the socket is bound.
addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$workdir/daemon.log" | head -n1)
	[ -n "$addr" ] && break
	if ! kill -0 "$daemon" 2>/dev/null; then
		echo "daemonsmoke: daemon died at startup" >&2
		cat "$workdir/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "daemonsmoke: daemon never reported its address" >&2
	cat "$workdir/daemon.log" >&2
	exit 1
fi
echo "daemonsmoke: daemon at $addr"

"$workdir/simsymd" -loadgen -target "http://$addr" -clients 1000000 \
	-workers 16 -duration "$duration" >"$workdir/loadgen.json"
grep -q '"sessions_per_sec"' "$workdir/loadgen.json"
sessions=$(sed -n 's/.*"sessions": \([0-9]*\).*/\1/p' "$workdir/loadgen.json" | head -n1)
if [ -z "$sessions" ] || [ "$sessions" -eq 0 ]; then
	echo "daemonsmoke: loadgen completed zero sessions" >&2
	cat "$workdir/loadgen.json" >&2
	exit 1
fi
echo "daemonsmoke: loadgen completed $sessions sessions in $duration"

curl -sf "http://$addr/metrics" >"$workdir/metrics.txt"
for metric in simsym_server_sessions_created_total simsym_server_step_latency_seconds_count; do
	grep -q "$metric" "$workdir/metrics.txt" || {
		echo "daemonsmoke: /metrics missing $metric" >&2
		exit 1
	}
done
echo "daemonsmoke: /metrics exposes the server SLO series"

curl -sf -X POST "http://$addr/admin/drain" >/dev/null
wait "$daemon"
rc=$?
if [ "$rc" -ne 0 ]; then
	echo "daemonsmoke: daemon exited $rc after drain" >&2
	cat "$workdir/daemon.log" >&2
	exit 1
fi
grep -q drained "$workdir/daemon.log"
echo "daemonsmoke: drain exited 0 — OK"
