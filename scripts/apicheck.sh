#!/bin/sh
# apicheck.sh — guard the API surfaces downstream code and the daemon
# depend on.
#
# Renders `go doc` (the package documentation plus the one-line index of
# every exported symbol) for each guarded package and diffs it against
# the checked-in baseline under api/. Any accidental removal, rename, or
# signature change of an exported symbol shows up as a diff and fails
# CI; a deliberate API change is recorded by regenerating the baselines:
#
#	./scripts/apicheck.sh          # verify (CI mode)
#	./scripts/apicheck.sh -update  # accept the current surfaces
#
# Guarded surfaces:
#   api/simsym.txt — package simsym, the public facade
#   api/server.txt — internal/server, the simsymd session API (HTTP
#                    handlers, session config/snapshot JSON contracts)
set -eu
cd "$(dirname "$0")/.."
mode="${1:-}"
status=0

check() {
	pkg=$1
	baseline=$2
	tmp=$(mktemp)
	go doc "$pkg" >"$tmp"
	if [ "$mode" = "-update" ]; then
		mkdir -p api
		cp "$tmp" "$baseline"
		echo "apicheck: baseline $baseline updated"
	elif [ ! -f "$baseline" ]; then
		echo "apicheck: missing baseline $baseline (run ./scripts/apicheck.sh -update)" >&2
		status=1
	elif ! diff -u "$baseline" "$tmp"; then
		echo "apicheck: $pkg surface changed (baseline $baseline)." >&2
		echo "apicheck: if intentional, regenerate with ./scripts/apicheck.sh -update" >&2
		status=1
	else
		echo "apicheck: $pkg matches $baseline"
	fi
	rm -f "$tmp"
}

check . api/simsym.txt
check ./internal/server api/server.txt
exit $status
