#!/bin/sh
# apicheck.sh — guard the public API surface of package simsym.
#
# Renders `go doc .` (the package documentation plus the one-line index
# of every exported symbol) and diffs it against the checked-in baseline
# at api/simsym.txt. Any accidental removal, rename, or signature change
# of an exported symbol shows up as a diff and fails CI; a deliberate
# API change is recorded by regenerating the baseline:
#
#	./scripts/apicheck.sh          # verify (CI mode)
#	./scripts/apicheck.sh -update  # accept the current surface
set -eu
cd "$(dirname "$0")/.."
baseline=api/simsym.txt
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go doc . >"$tmp"
if [ "${1:-}" = "-update" ]; then
	mkdir -p api
	cp "$tmp" "$baseline"
	echo "apicheck: baseline $baseline updated"
	exit 0
fi
if [ ! -f "$baseline" ]; then
	echo "apicheck: missing baseline $baseline (run ./scripts/apicheck.sh -update)" >&2
	exit 1
fi
if ! diff -u "$baseline" "$tmp"; then
	echo "apicheck: public API surface changed." >&2
	echo "apicheck: if intentional, regenerate with ./scripts/apicheck.sh -update" >&2
	exit 1
fi
echo "apicheck: public API matches $baseline"
