package simsym_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"simsym"
)

// TestFacadeBadArgs: every facade helper rejects malformed arguments
// with an error wrapping ErrBadArgs — one consistent sentinel across the
// whole surface.
func TestFacadeBadArgs(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"Ring(0)", func() error { _, err := simsym.Ring(0); return err }},
		{"Ring(-3)", func() error { _, err := simsym.Ring(-3); return err }},
		{"Dining(1)", func() error { _, err := simsym.Dining(1); return err }},
		{"DiningFlipped(2)", func() error { _, err := simsym.DiningFlipped(2); return err }},
		{"DiningFlipped(5)", func() error { _, err := simsym.DiningFlipped(5); return err }},
		{"Star(0)", func() error { _, err := simsym.Star(0); return err }},
		{"Similarity(nil)", func() error { _, err := simsym.SimilarityOpts(nil, simsym.RuleQ); return err }},
		{"SimilarityOpts(nil)", func() error { _, err := simsym.SimilarityOpts(nil, simsym.RuleQ); return err }},
		{"Decide(nil)", func() error { _, err := simsym.DecideOpts(nil, simsym.InstrQ, simsym.SchedFair); return err }},
		{"BuildSelect(nil)", func() error { _, _, err := simsym.BuildSelectOpts(nil, simsym.InstrQ, simsym.SchedFair); return err }},
		{"NewMachine(nil sys)", func() error { _, err := simsym.NewMachine(nil, simsym.InstrQ, &simsym.Program{}); return err }},
		{"ComputeOrbits(nil)", func() error { _, err := simsym.ComputeOrbits(nil); return err }},
		{"MimicsNobody(nil)", func() error { _, err := simsym.MimicsNobody(nil); return err }},
		{"HomogeneousFamily(empty)", func() error { _, err := simsym.HomogeneousFamily(nil); return err }},
		{"DecideFamily(nil)", func() error { _, err := simsym.DecideFamily(nil); return err }},
		{"RelabelVersions(nil)", func() error { _, err := simsym.RelabelVersions(nil); return err }},
		{"RoundRobin(0, 1)", func() error { _, err := simsym.RoundRobin(0, 1); return err }},
		{"RoundRobin(3, -1)", func() error { _, err := simsym.RoundRobin(3, -1); return err }},
		{"WitnessSimilarity(rounds=0)", func() error {
			sys := simsym.Fig1()
			lab, err := simsym.SimilarityOpts(sys, simsym.RuleQ)
			if err != nil {
				return err
			}
			_, err = simsym.WitnessSimilarity(sys, simsym.InstrQ, &simsym.Program{}, lab, 0)
			return err
		}},
		{"CheckOpts(nil prog)", func() error {
			_, err := simsym.CheckOpts(simsym.Fig1(), simsym.InstrL, nil, simsym.WithMaxStates(100))
			return err
		}},
		{"CheckOpts(negative states)", func() error {
			_, err := simsym.CheckOpts(simsym.Fig1(), simsym.InstrL, &simsym.Program{}, simsym.WithMaxStates(-1))
			return err
		}},
		{"CheckDiningOpts(nil prog)", func() error {
			_, err := simsym.CheckDiningOpts(simsym.Fig1(), nil, simsym.WithMaxStates(100))
			return err
		}},
		{"DiningProgram(meals=0)", func() error { _, err := simsym.DiningProgram("left", "right", 0); return err }},
		{"DiningProgram(empty name)", func() error { _, err := simsym.DiningProgram("", "right", 1); return err }},
		{"OrientedDiningTable(shape)", func() error { _, err := simsym.OrientedDiningTable(3, []bool{true}); return err }},
		{"ChandyMisraProgram(0)", func() error { _, err := simsym.ChandyMisraProgram(0); return err }},
		{"ItaiRodehSweep(runs=0)", func() error { _, err := simsym.ItaiRodehSweep(1, 5, 8, 100, 0); return err }},
		{"CSPRing(0)", func() error { _, err := simsym.CSPRing(0); return err }},
		{"DecideExtendedCSP(nil)", func() error { _, err := simsym.DecideExtendedCSP(nil); return err }},
		{"MsgSimilarity(nil)", func() error { _, err := simsym.MsgSimilarity(nil, true); return err }},
		{"RunFair(rounds=0)", func() error {
			_, _, err := simsym.RunFair(simsym.Fig1(), simsym.InstrL, &simsym.Program{}, 0)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("want an error, got nil")
			}
			if !errors.Is(err, simsym.ErrBadArgs) {
				t.Fatalf("error %v should wrap ErrBadArgs", err)
			}
		})
	}
}

// markedRing returns a ring with one distinguished processor, so the
// similarity refinement actually carves classes (and emits refinement
// events) instead of closing immediately on the symmetric partition.
func markedRing(t *testing.T, n int) *simsym.System {
	t.Helper()
	sys, err := simsym.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	sys.ProcInit[0] = "leader"
	return sys
}

// TestDecideOptsEventKinds is the acceptance criterion for the observer
// plumbing: one DecideOpts run over an in-memory ring captures at least
// five distinct event kinds end to end (phase boundaries, refinement
// rounds, point stats, and the verdict).
func TestDecideOptsEventKinds(t *testing.T) {
	ring := simsym.NewEventRing(0)
	rec := simsym.NewRecorder(ring)
	d, err := simsym.DecideOpts(markedRing(t, 6), simsym.InstrQ, simsym.SchedFair,
		simsym.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("marked ring should be solvable in Q: %s", d.Reason)
	}
	kinds := ring.CountByKind()
	if len(kinds) < 5 {
		t.Fatalf("one DecideOpts run captured %d distinct event kinds (%v), want >= 5", len(kinds), kinds)
	}
	// The stream nests correctly: selection.decide wraps core.similarity.
	evs := ring.Events()
	if evs[0].Kind.String() != "phase_start" || evs[0].Name != "selection.decide" {
		t.Errorf("first event = %+v, want selection.decide phase start", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind.String() != "phase_end" || last.Name != "selection.decide" {
		t.Errorf("last event = %+v, want selection.decide phase end", last)
	}
	// Metrics aggregated alongside the events.
	var buf bytes.Buffer
	if err := rec.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simsym_core_similarity_runs_total", "simsym_core_refine_rounds_total", "simsym_core_similarity_seconds_count"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics text missing %s:\n%s", want, buf.String())
		}
	}
}

// TestCheckOptsReport: CheckOpts proves the Fig1 SELECT program safe
// and its report carries the engine statistics the retired positional
// wrapper could not surface.
func TestCheckOptsReport(t *testing.T) {
	sys := simsym.Fig1()
	prog, _, err := simsym.BuildSelectOpts(sys, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckOpts(sys, simsym.InstrL, prog, simsym.WithMaxStates(100_000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("Fig1 SELECT should verify safe within the budget: %+v", rep)
	}
	if rep.StatesExplored == 0 || rep.Stats.Transitions == 0 {
		t.Errorf("report should carry engine stats: %+v", rep)
	}

	// A tiny budget degrades gracefully into a partial report.
	tight, err := simsym.CheckOpts(sys, simsym.InstrL, prog, simsym.WithBudget(2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Complete || tight.Exhausted != "states" || tight.StatesExplored != 2 {
		t.Errorf("tight budget report = %+v, want partial with Exhausted=states", tight)
	}

	// A canceled context reads as the "canceled" budget.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceled, err := simsym.CheckOpts(sys, simsym.InstrL, prog, simsym.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if canceled.Complete && canceled.Exhausted != "" {
		t.Errorf("canceled report = %+v", canceled)
	}
}

// TestCheckDiningOptsBudgetAndSymmetry: budget mapping and symmetry
// reduction reach the dining checker through the options.
func TestCheckDiningOptsBudgetAndSymmetry(t *testing.T) {
	table, err := simsym.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := simsym.CheckDiningOpts(table, prog, simsym.WithMaxStates(100_000))
	if err != nil {
		t.Fatal(err)
	}
	sym, err := simsym.CheckDiningOpts(table, prog,
		simsym.WithBudget(100_000, time.Minute, 0),
		simsym.WithSymmetry(true),
		simsym.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Deadlocked != nil || sym.Deadlocked != nil {
		t.Error("flipped table must not deadlock")
	}
	if (plain.ExclusionViolated == nil) != (sym.ExclusionViolated == nil) {
		t.Error("symmetry reduction changed the exclusion verdict")
	}
	if sym.StatesExplored > plain.StatesExplored {
		t.Errorf("symmetry reduction explored more states (%d) than plain (%d)",
			sym.StatesExplored, plain.StatesExplored)
	}
}

// TestCheckOptsShardedSpill: the sharded index and spill tier reach the
// checker through the facade options and leave the verdict, counters,
// and witness identical to the plain engine.
func TestCheckOptsShardedSpill(t *testing.T) {
	table, err := simsym.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := simsym.CheckDiningOpts(table, prog, simsym.WithMaxStates(100_000))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := simsym.CheckDiningOpts(table, prog,
		simsym.WithMaxStates(100_000),
		simsym.WithWorkers(4),
		simsym.WithShards(4),
		simsym.WithSpill(1, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.StatesExplored != sharded.StatesExplored || plain.Complete != sharded.Complete {
		t.Errorf("sharded+spill facade run diverged: plain %d/%v, sharded %d/%v",
			plain.StatesExplored, plain.Complete, sharded.StatesExplored, sharded.Complete)
	}
	if sharded.Deadlocked != nil || sharded.ExclusionViolated != nil {
		t.Error("flipped table must stay safe under the sharded engine")
	}
}

// TestRunFair: seed determinism and observer capture.
func TestRunFair(t *testing.T) {
	sys := simsym.Fig2()
	prog, _, err := simsym.BuildSelectOpts(sys, simsym.InstrQ, simsym.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	ring := simsym.NewEventRing(0)
	rec := simsym.NewRecorder(ring)
	m1, steps1, err := simsym.RunFair(sys, simsym.InstrQ, prog, 300,
		simsym.WithSeed(42), simsym.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if sel := m1.SelectedProcs(); len(sel) != 1 {
		t.Fatalf("selected = %v, want exactly one", sel)
	}
	if steps1 == 0 {
		t.Fatal("no steps executed")
	}
	if got := int(ring.Total()); got != steps1 {
		t.Errorf("observer captured %d sched-step events, want %d", got, steps1)
	}
	if rec.Metrics().Counter("machine.steps").Value() != int64(steps1) {
		t.Error("machine.steps counter should equal executed steps")
	}
	m2, steps2, err := simsym.RunFair(sys, simsym.InstrQ, prog, 300, simsym.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if steps1 != steps2 || m1.Fingerprint() != m2.Fingerprint() {
		t.Error("same seed must reproduce the identical run")
	}
}
