package simsym

import (
	"fmt"
	"math/rand"

	"simsym/internal/adversary"
	"simsym/internal/dining"
	"simsym/internal/mc"
)

// Statistical checking, re-exported from the internal mc and adversary
// packages.
type (
	// SampleStats is the statistical checkers' deterministic counter
	// surface: trials, violations, the Okamoto target, accumulated
	// steps/slots, depth, and merge rounds. No wall-clock or
	// worker-count facts appear, so same-seed reports compare
	// byte-for-byte across worker counts.
	SampleStats = mc.SampleStats
	// FaultEvent is one injected fault, recorded in slot order; the
	// fault log plus the schedule is a complete replayable trace.
	FaultEvent = adversary.Event
)

// OkamotoSamples returns how many i.i.d. trials a statistical check
// needs for its estimate to be within epsilon of the true violation
// probability with confidence 1−delta: ceil(ln(2/δ) / (2ε²)).
func OkamotoSamples(epsilon, delta float64) int { return mc.OkamotoBound(epsilon, delta) }

// StatReport is the outcome of a statistical check: a confidence
// interval around the probability that one random bounded run violates
// the invariants, plus — when any sampled run violated — a fully
// replayable counterexample trace.
type StatReport struct {
	// Safe reports that no sampled run violated; with Estimate and
	// HalfWidth it is a probabilistic claim, not a proof.
	Safe bool
	// Complete reports that the full Okamoto target was sampled, so
	// Estimate ± HalfWidth covers the truth at the requested confidence.
	Complete bool
	// Exhausted names the budget that ended an incomplete run:
	// "samples", "time", or "canceled".
	Exhausted string
	// Samples counts merged trials, Target the Okamoto bound they were
	// measured against, Violations the flagged trials.
	Samples    int
	Target     int
	Violations int
	// Estimate is Violations/Samples; HalfWidth is the achieved
	// two-sided confidence half-width at level 1−delta.
	Estimate  float64
	HalfWidth float64
	// Violation describes the first (sample-index-least) violating run
	// ("" when Safe); Sample is its trial index and SampleSeed its
	// derived seed. Schedule and Faults are the run's slot-by-slot
	// processor sequence and fault log — together a complete replayable
	// trace of the counterexample.
	Violation  string
	Sample     int
	SampleSeed int64
	Schedule   []int
	Faults     []FaultEvent
	// Stats carries the deterministic counters.
	Stats SampleStats
}

// statHarness configures one family of sampled runs: a harness template
// plus the per-trial randomness recipe. Every trial copies the template,
// installs a freshly seeded scheduler and fault layer, and runs — so
// trials are independent, deterministic per seed, and safe to run
// concurrently (the shared System/Program are only read).
type statHarness struct {
	base  adversary.Harness
	spec  adversary.Spec
	kind  string
	procs int
	vars  int
}

func (s *statHarness) run(seed int64, depth int) (*adversary.Result, error) {
	h := s.base
	h.MaxSlots = depth
	rng := rand.New(rand.NewSource(seed))
	if s.kind == "shuffled" {
		h.Sched = adversary.Shuffled(rng, s.procs)
	} else {
		h.Sched = adversary.Uniform(rng, s.procs)
	}
	if s.spec.Enabled() {
		spec := s.spec
		// Per-class streams get their own trial-local seeds, offset so
		// the schedule stream and the three fault streams never alias.
		spec.CrashSeed, spec.StallSeed, spec.DropSeed = seed+1, seed+2, seed+3
		h.Faults = adversary.NewFaults(spec, s.procs, s.vars)
	}
	return h.Run()
}

func (s *statHarness) trial(seed int64, depth int, capture bool) (mc.Trial, error) {
	r, err := s.run(seed, depth)
	if err != nil {
		return mc.Trial{}, err
	}
	t := mc.Trial{Steps: r.Steps, Slots: r.Slots}
	if r.Violation != nil {
		t.Violated = true
		t.Reason = r.Violation.Reason
	}
	if capture {
		t.Schedule = r.Schedule
	}
	return t, nil
}

// checkStatistical validates the shared facade options, runs the
// sampler, and folds the result into a StatReport.
func (sh *statHarness) check(name string, o Options) (*StatReport, error) {
	switch o.SchedKind {
	case "", "uniform", "shuffled":
		sh.kind = o.SchedKind
	default:
		return nil, fmt.Errorf("%w: %s: unknown schedule kind %q", ErrBadArgs, name, o.SchedKind)
	}
	if o.Epsilon < 0 || o.Epsilon >= 1 || o.Delta < 0 || o.Delta >= 1 {
		return nil, fmt.Errorf("%w: %s: epsilon %v and delta %v must lie in (0, 1)", ErrBadArgs, name, o.Epsilon, o.Delta)
	}
	if o.Depth < 0 || o.MaxSamples < 0 {
		return nil, fmt.Errorf("%w: %s: depth %d and samples %d must be >= 0", ErrBadArgs, name, o.Depth, o.MaxSamples)
	}
	if o.FaultClasses != "" {
		spec, err := adversary.ParseSpec(o.FaultClasses, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrBadArgs, name, err)
		}
		sh.spec = spec
	}
	res, err := mc.Sample(sh.trial, mc.SampleOptions{
		Epsilon:     o.Epsilon,
		Delta:       o.Delta,
		MaxSamples:  o.MaxSamples,
		Depth:       o.Depth,
		Workers:     o.Workers,
		Seed:        o.Seed,
		MaxDuration: o.MaxDuration.Std(),
		Partial:     true,
		Obs:         o.Obs,
		Ctx:         o.Ctx,
	})
	if err != nil {
		return nil, err
	}
	rep := &StatReport{
		Safe:       res.Violations == 0,
		Complete:   res.Complete,
		Exhausted:  res.Exhausted,
		Samples:    res.Samples,
		Target:     res.Target,
		Violations: res.Violations,
		Estimate:   res.Estimate,
		HalfWidth:  res.HalfWidth,
		Stats:      res.Stats,
	}
	if v := res.FirstViolation; v != nil {
		rep.Violation = v.Reason
		rep.Sample = v.Sample
		rep.SampleSeed = v.Seed
		rep.Schedule = append([]int(nil), v.Schedule...)
		// The sampler's Trial carries no fault log (mc cannot know the
		// adversary's event type); one more deterministic re-run of the
		// violating seed recovers it.
		depth := o.Depth
		if depth == 0 {
			depth = mc.DefaultSampleDepth
		}
		rr, err := sh.run(v.Seed, depth)
		if err != nil {
			return nil, err
		}
		rep.Faults = rr.FaultLog
	}
	return rep, nil
}

// CheckStatistical estimates, by sampling random schedules on the
// compiled VM, the probability that a bounded run of a selection program
// violates Uniqueness or Stability. Each trial draws an i.i.d. seeded
// schedule (and, with WithFaults, an i.i.d. fault sequence), runs to the
// WithDepth slot budget, and checks the same invariants as CheckOpts —
// Uniqueness through its per-step localized form, Stability on every
// transition. Sampling stops once the estimate's confidence interval at
// level 1−delta has half-width epsilon (WithConfidence), per the
// Okamoto/Chernoff–Hoeffding bound; same seed and options reproduce the
// identical report at any worker count. Unlike CheckOpts this never
// proves safety — it bounds the violation probability of one random
// bounded run. Recognized options: WithConfidence, WithSamples,
// WithDepth, WithFaults, WithScheduleKind, WithSeed, WithWorkers,
// WithBudget (duration only), WithObserver, WithContext.
func CheckStatistical(sys *System, instr InstrSet, prog *Program, opts ...Option) (*StatReport, error) {
	if sys == nil || prog == nil {
		return nil, fmt.Errorf("%w: CheckStatistical: nil system or program", ErrBadArgs)
	}
	o := buildOptions(opts)
	sh := &statHarness{
		base: adversary.Harness{
			Sys:        sys,
			Instr:      instr,
			Prog:       prog,
			ProcPreds:  []mc.ProcPredicate{mc.LocalUniquenessPred},
			TransPreds: []mc.TransitionPredicate{mc.StabilityPred},
		},
		procs: sys.NumProcs(),
		vars:  sys.NumVars(),
	}
	return sh.check("CheckStatistical", o)
}

// CheckStatisticalDining estimates, by sampling random schedules on the
// compiled VM, the probability that a bounded run of a dining program
// (instruction set L) violates fork exclusion. Exclusion is checked
// after every executed step through its per-step localized form, so
// trials stay O(1) per step even on large tables; lock-drop faults
// (WithFaults("lockdrop")) are how exclusion actually breaks — a dropped
// fork can be re-acquired while its holder still eats. See
// CheckStatistical for the stopping rule, determinism guarantees, and
// recognized options.
func CheckStatisticalDining(sys *System, prog *Program, opts ...Option) (*StatReport, error) {
	if sys == nil || prog == nil {
		return nil, fmt.Errorf("%w: CheckStatisticalDining: nil system or program", ErrBadArgs)
	}
	o := buildOptions(opts)
	excl, err := dining.LocalExclusionPred(sys)
	if err != nil {
		return nil, fmt.Errorf("CheckStatisticalDining: %w", err)
	}
	sh := &statHarness{
		base: adversary.Harness{
			Sys:       sys,
			Instr:     InstrL,
			Prog:      prog,
			ProcPreds: []mc.ProcPredicate{excl},
		},
		procs: sys.NumProcs(),
		vars:  sys.NumVars(),
	}
	return sh.check("CheckStatisticalDining", o)
}
