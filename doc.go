// Package simsym is a library companion to Johnson & Schneider,
// "Symmetry and Similarity in Distributed Systems" (PODC 1985).
//
// It models anonymous concurrent systems — processors connected to shared
// variables through local names — and implements the paper's theory end
// to end: similarity labelings (Algorithm 1) under the S, L, and Q
// instruction sets; the distributed label-learning programs (Algorithms 2
// and 3); the selection problem's decision procedures and the SELECT /
// Algorithm 4 constructions; graph-theoretic symmetry and Theorems 10–11;
// the Dining Philosophers results DP and DP'; message-passing and CSP
// transfers; and the randomized symmetry breakers of section 8. A small
// VM executes the generated programs one atomic step at a time, and an
// explicit-state model checker verifies Uniqueness, Stability, exclusion,
// and deadlock-freedom over every schedule.
//
// This package is the public facade: it re-exports the stable surface of
// the internal packages so downstream users never import simsym/internal.
//
// Quick start:
//
//	sys, _ := simsym.Ring(5)
//	lab, _ := simsym.SimilarityOpts(sys, simsym.RuleQ)
//	fmt.Println(lab)                       // one class: all similar
//	d, _ := simsym.DecideOpts(sys, simsym.InstrL, simsym.SchedFair)
//	fmt.Println(d.Solvable, d.Reason)      // false: rings stay anonymous
//
// # Options and observability
//
// Every entry point has an options-based variant — SimilarityOpts,
// DecideOpts, BuildSelectOpts, CheckOpts, CheckDiningOpts, RunFair —
// configured with functional options:
//
//	rec := simsym.NewRecorder(simsym.NewEventRing(0))
//	rep, err := simsym.CheckOpts(sys, simsym.InstrL, prog,
//	    simsym.WithObserver(rec),
//	    simsym.WithBudget(500_000, 30*time.Second, 1<<30),
//	    simsym.WithWorkers(4),
//	    simsym.WithSymmetry(true),
//	    simsym.WithContext(ctx))
//
// The observer receives typed, deterministic events (phase boundaries,
// refinement rounds, state expansions, scheduler steps, fault
// injections, verdicts) through a pluggable sink — an in-memory ring
// (NewEventRing), a JSONL stream (NewJSONLSink), or any EventSink — and
// aggregates counters and latency histograms in a metrics registry
// (Recorder.Metrics) renderable in Prometheus text format. A nil
// observer costs one pointer check on the hot paths.
//
// # Statistical checking
//
// When the state space is too large for CheckOpts to enumerate,
// CheckStatistical and CheckStatisticalDining estimate the probability
// that one random bounded run violates the invariants, by sampling
// i.i.d. seeded schedules (optionally under seeded crash/stall/lock-drop
// faults) and stopping per the Okamoto/Chernoff–Hoeffding bound:
//
//	rep, err := simsym.CheckStatisticalDining(sys, prog,
//	    simsym.WithConfidence(0.01, 0.05), // half-width ε, 1−δ confidence
//	    simsym.WithDepth(1024),            // slots per sampled run
//	    simsym.WithFaults("lockdrop"),
//	    simsym.WithSeed(42),
//	    simsym.WithWorkers(4))
//	// rep.Estimate ± rep.HalfWidth bounds the violation probability;
//	// rep.Schedule and rep.Faults replay any counterexample exactly.
//
// The same seed produces a byte-identical report at every worker count,
// and a report's counterexample trace replays through the adversary
// harness. Unlike CheckOpts this is never a proof — Safe means "no
// sampled run violated", qualified by the confidence interval.
//
// # Shared run configuration
//
// The knobs behind the functional options live in one JSON-taggable
// struct, RunConfig, shared verbatim with the simsymd daemon's
// session-create endpoint — a config that drives CheckOpts locally is
// the same document a session carries over HTTP:
//
//	cfg := simsym.RunConfig{MaxStates: 500_000, Workers: 4, Symmetry: true}
//	rep, err := simsym.CheckOpts(sys, instr, prog, simsym.WithConfig(cfg))
//
// # Dynamic topologies
//
// NewDynSystem lifts a system into an incrementally-maintained
// similarity labeling: processors and variables join, leave, crash,
// restart, rewire, and change initial state while the engine repairs
// only the equivalence classes each event invalidates (splitting where
// a member's environment signature diverged, merging exactly where the
// class-graph quotient proves coarseness restorable):
//
//	d, err := simsym.NewDynSystem(sys, simsym.RuleQ)
//	st, err := d.Apply(
//		simsym.Mutation{Op: simsym.OpAddVar, Var: "vx", Init: "0"},
//		simsym.Mutation{Op: simsym.OpAddProc, Proc: "px", Init: "0", Bind: []string{"v0", "vx"}},
//	)
//	fmt.Println(d.NumClasses(), st.Splits, st.Merges)
//
// A mutation batch is one churn event: one settle, one stats record.
// ApplyDiff diffs a whole target system against the current topology
// and applies it as a single event. Labeling and Snapshot expose the
// canonical labeling and a compacted static system at any instant, and
// the result always equals a from-scratch SimilarityOpts on that
// snapshot — the fuzzer FuzzIncrementalSimilarity holds the two paths
// equal after every event. NewChurn wraps a DynSystem in a seeded,
// replayable stream of weighted join/leave/crash/restart/rewire events
// for soak tests and benchmarks; the simsymd daemon exposes the same
// engine per session via POST /v1/sessions/{id}/topology.
//
// # Migrating from the positional API
//
// The deprecated positional wrappers from earlier releases — Similarity,
// Decide, BuildSelect, CheckSelectionSafety, CheckDining — have been
// removed. Each has a drop-in options-based replacement:
//
//	simsym.Similarity(sys, rule)        →  simsym.SimilarityOpts(sys, rule)
//	simsym.Decide(sys, instr, sch)      →  simsym.DecideOpts(sys, instr, sch)
//	simsym.BuildSelect(sys, instr, sch) →  simsym.BuildSelectOpts(sys, instr, sch)
//
// The two checkers return richer reports instead of bare booleans:
//
//	safe, complete, err := simsym.CheckSelectionSafety(sys, instr, prog, 100_000)
//	// becomes
//	rep, err := simsym.CheckOpts(sys, instr, prog, simsym.WithMaxStates(100_000))
//	// with safe == rep.Safe, complete == rep.Complete, plus the witness
//	// schedule, the exhausted budget, and the engine statistics.
//
//	report, err := simsym.CheckDining(sys, prog, 60_000)
//	// becomes
//	report, err := simsym.CheckDiningOpts(sys, prog, simsym.WithMaxStates(60_000))
//
// Facade helpers validate their arguments and report violations with
// errors wrapping ErrBadArgs:
//
//	if _, err := simsym.Ring(0); errors.Is(err, simsym.ErrBadArgs) { ... }
package simsym
